package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: pdds
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig3           	      20	   3383705 ns/op	   2461503 packets/sec	  105734 B/op	    2876 allocs/op
BenchmarkScheduler/wtp-8  	      20	        44.30 ns/op	  22573363 packets/sec	       0 B/op	       0 allocs/op
BenchmarkPacketPool     	 1000000	        38.05 ns/op	  26281209 packets/sec	       6 B/op	       0 allocs/op
BenchmarkNoMem          	     100	       120 ns/op
PASS
ok  	pdds	0.080s
`

func TestParseBench(t *testing.T) {
	benches, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(benches), benches)
	}

	fig3 := benches[0]
	if fig3.Name != "BenchmarkFig3" || fig3.N != 20 {
		t.Errorf("fig3 header = %q/%d, want BenchmarkFig3/20", fig3.Name, fig3.N)
	}
	if fig3.NsPerOp != 3383705 || fig3.BytesPerOp != 105734 || fig3.AllocsPerOp != 2876 {
		t.Errorf("fig3 values = %+v", fig3)
	}
	if fig3.PacketsPerSec != 2461503 {
		t.Errorf("fig3 packets/sec = %g, want 2461503", fig3.PacketsPerSec)
	}

	// GOMAXPROCS suffix stripped, sub-benchmark path kept.
	if got := benches[1].Name; got != "BenchmarkScheduler/wtp" {
		t.Errorf("name = %q, want BenchmarkScheduler/wtp", got)
	}
	if benches[1].NsPerOp != 44.30 {
		t.Errorf("wtp ns/op = %g, want 44.30", benches[1].NsPerOp)
	}

	// Zero-alloc line parses with exact zeros.
	if benches[2].AllocsPerOp != 0 || benches[2].BytesPerOp != 6 {
		t.Errorf("pool values = %+v", benches[2])
	}

	// A line without -benchmem stats still parses.
	if benches[3].Name != "BenchmarkNoMem" || benches[3].NsPerOp != 120 {
		t.Errorf("nomem = %+v", benches[3])
	}
	if benches[3].AllocsPerOp != 0 || benches[3].PacketsPerSec != 0 {
		t.Errorf("nomem extras = %+v", benches[3])
	}
}

func TestParseBenchSkipsNoise(t *testing.T) {
	noise := `# some build output
?   	pdds/internal/core	[no test files]
--- BENCH: BenchmarkX
    bench_test.go:10: log line
Benchmark		garbage
PASS
`
	benches, err := ParseBench(strings.NewReader(noise))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 0 {
		t.Fatalf("parsed %d benchmarks from noise, want 0", len(benches))
	}
}

func TestParseBenchRoundTripDeltas(t *testing.T) {
	if got := pctDelta(100, 110); got != "+10.0%" {
		t.Errorf("pctDelta(100,110) = %q", got)
	}
	if got := pctDelta(0, 5); got != "n/a" {
		t.Errorf("pctDelta(0,5) = %q", got)
	}
	if got := absDelta(3, 0); got != "-3" {
		t.Errorf("absDelta(3,0) = %q", got)
	}
}
