package main

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	// Pkg is the import path from the preceding "pkg:" header line
	// (empty when the output had none).
	Pkg string `json:"pkg,omitempty"`
	// Name is the benchmark name with any GOMAXPROCS "-N" suffix removed,
	// so baselines recorded on machines with different core counts still
	// match up.
	Name string `json:"name"`
	// N is the iteration count the values were averaged over.
	N int64 `json:"n"`
	// NsPerOp is wall-clock nanoseconds per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are the -benchmem allocation stats
	// (zero when -benchmem was off).
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// PacketsPerSec is this repo's custom throughput metric: simulated
	// packets completed per wall-clock second.
	PacketsPerSec float64 `json:"packets_per_sec"`
}

// Artifact is the JSON baseline file layout.
type Artifact struct {
	Tool        string  `json:"tool"`
	GoVersion   string  `json:"go_version"`
	GeneratedAt string  `json:"generated_at"`
	Benchmarks  []Bench `json:"benchmarks"`
}

// procSuffix matches the "-8" style GOMAXPROCS suffix go test appends to
// benchmark names when GOMAXPROCS > 1.
var procSuffix = regexp.MustCompile(`-\d+$`)

// ParseBench extracts benchmark result lines from `go test -bench` output.
// Non-benchmark lines (package headers, PASS/ok, test logs) are skipped.
// A line is a result when it starts with "Benchmark", has an iteration
// count, and then "value unit" pairs such as "123 ns/op" or
// "456 packets/sec".
func ParseBench(r io.Reader) ([]Bench, error) {
	var out []Bench
	var pkg string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then at least one value/unit pair.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Bench{Pkg: pkg, Name: procSuffix.ReplaceAllString(fields[0], ""), N: n}
		valid := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				valid = false
				break
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			case "packets/sec":
				b.PacketsPerSec = v
			default:
				// Unknown custom metric: ignore, keep the line.
			}
		}
		if !valid {
			continue
		}
		if b.NsPerOp == 0 {
			return nil, fmt.Errorf("benchmark %s: no ns/op value in %q", b.Name, line)
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
