package main

import (
	"strings"
	"testing"
)

func regressBase() *Artifact {
	return &Artifact{Benchmarks: []Bench{
		{Pkg: "pdds/internal/link", Name: "BenchmarkLink", NsPerOp: 1000, AllocsPerOp: 0, PacketsPerSec: 5e6},
		{Pkg: "pdds/internal/core", Name: "BenchmarkWTP", NsPerOp: 200, AllocsPerOp: 2, PacketsPerSec: 0},
	}}
}

func TestRegressionsCleanRun(t *testing.T) {
	cur := []Bench{
		// Within budget: +10% ns/op, same allocs, -10% packets/sec.
		{Pkg: "pdds/internal/link", Name: "BenchmarkLink", NsPerOp: 1100, AllocsPerOp: 0, PacketsPerSec: 4.5e6},
		{Pkg: "pdds/internal/core", Name: "BenchmarkWTP", NsPerOp: 180, AllocsPerOp: 2},
	}
	if regs := regressions(regressBase(), cur, 0.15); len(regs) != 0 {
		t.Errorf("clean run flagged: %v", regs)
	}
}

func TestRegressionsNsPerOp(t *testing.T) {
	cur := []Bench{{Pkg: "pdds/internal/link", Name: "BenchmarkLink", NsPerOp: 1200, PacketsPerSec: 5e6}}
	regs := regressions(regressBase(), cur, 0.15)
	if len(regs) != 1 || !strings.Contains(regs[0], "ns/op") {
		t.Errorf("want one ns/op regression, got %v", regs)
	}
	// The same run passes a looser budget.
	if regs := regressions(regressBase(), cur, 0.25); len(regs) != 0 {
		t.Errorf("within-budget run flagged: %v", regs)
	}
	// Exactly at the threshold is not a regression (strictly beyond).
	cur[0].NsPerOp = 1150
	if regs := regressions(regressBase(), cur, 0.15); len(regs) != 0 {
		t.Errorf("at-threshold run flagged: %v", regs)
	}
}

func TestRegressionsAllocsAnyIncrease(t *testing.T) {
	cur := []Bench{{Pkg: "pdds/internal/link", Name: "BenchmarkLink", NsPerOp: 1000, AllocsPerOp: 1, PacketsPerSec: 5e6}}
	regs := regressions(regressBase(), cur, 0.15)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Errorf("want one allocs/op regression, got %v", regs)
	}
	// Fewer allocs is fine.
	cur = []Bench{{Pkg: "pdds/internal/core", Name: "BenchmarkWTP", NsPerOp: 200, AllocsPerOp: 1}}
	if regs := regressions(regressBase(), cur, 0.15); len(regs) != 0 {
		t.Errorf("alloc improvement flagged: %v", regs)
	}
}

func TestRegressionsPacketsPerSec(t *testing.T) {
	cur := []Bench{{Pkg: "pdds/internal/link", Name: "BenchmarkLink", NsPerOp: 1000, PacketsPerSec: 4e6}}
	regs := regressions(regressBase(), cur, 0.15)
	if len(regs) != 1 || !strings.Contains(regs[0], "packets/sec") {
		t.Errorf("want one packets/sec regression, got %v", regs)
	}
	// A baseline without the metric (0) never gates on it.
	cur = []Bench{{Pkg: "pdds/internal/core", Name: "BenchmarkWTP", NsPerOp: 200, AllocsPerOp: 2, PacketsPerSec: 123}}
	if regs := regressions(regressBase(), cur, 0.15); len(regs) != 0 {
		t.Errorf("metric-less baseline gated: %v", regs)
	}
}

func TestRegressionsIgnoresUnmatched(t *testing.T) {
	cur := []Bench{
		// New benchmark, terrible numbers: not a regression.
		{Pkg: "pdds/internal/sim", Name: "BenchmarkNew", NsPerOp: 1e9, AllocsPerOp: 50},
	}
	if regs := regressions(regressBase(), cur, 0.15); len(regs) != 0 {
		t.Errorf("unmatched benchmark flagged: %v", regs)
	}
	// Same name in a different package must not match the baseline entry.
	cur = []Bench{{Pkg: "pdds/other", Name: "BenchmarkLink", NsPerOp: 99999, AllocsPerOp: 50}}
	if regs := regressions(regressBase(), cur, 0.15); len(regs) != 0 {
		t.Errorf("cross-package name collision flagged: %v", regs)
	}
}

func TestRegressionsMultiple(t *testing.T) {
	cur := []Bench{
		{Pkg: "pdds/internal/link", Name: "BenchmarkLink", NsPerOp: 2000, AllocsPerOp: 3, PacketsPerSec: 1e6},
	}
	regs := regressions(regressBase(), cur, 0.15)
	if len(regs) != 3 {
		t.Errorf("want 3 regressions (ns, allocs, pps), got %d: %v", len(regs), regs)
	}
}
