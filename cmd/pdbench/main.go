// Command pdbench turns `go test -bench` output into a tracked baseline.
// It reads benchmark output on stdin, and either saves the parsed results
// as a JSON baseline artifact or compares them against a previously saved
// baseline, printing per-benchmark deltas for ns/op, allocs/op and the
// packets/sec throughput metric. In comparison mode it exits non-zero
// when any benchmark regresses beyond -threshold (or allocates more than
// its baseline at all), so `make bench-cmp` is a pass/fail CI gate.
//
// Examples:
//
//	go test -bench . -benchmem ./... | pdbench -save BENCH_baseline.json
//	go test -bench . -benchmem ./... | pdbench -baseline BENCH_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"text/tabwriter"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdbench: ")

	var (
		save      = flag.String("save", "", "write the parsed benchmarks to this JSON baseline file")
		baseline  = flag.String("baseline", "", "compare the parsed benchmarks against this JSON baseline file")
		threshold = flag.Float64("threshold", 0.15, "relative regression budget for ns/op and packets/sec before exiting non-zero (allocs/op may never grow); negative disables the gate")
	)
	flag.Parse()

	benches, err := ParseBench(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(benches) == 0 {
		log.Fatal("no benchmark lines found on stdin (run with `go test -bench . -benchmem`)")
	}

	if *save != "" {
		art := Artifact{
			Tool:        "pdbench",
			GoVersion:   runtime.Version(),
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			Benchmarks:  benches,
		}
		if err := writeArtifact(*save, art); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pdbench: saved %d benchmarks to %s\n", len(benches), *save)
	}

	switch {
	case *baseline != "":
		base, err := readArtifact(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeComparison(os.Stdout, base, benches); err != nil {
			log.Fatal(err)
		}
		if *threshold >= 0 {
			regs := regressions(base, benches, *threshold)
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "pdbench: regression: "+r)
			}
			if len(regs) > 0 {
				os.Exit(1)
			}
		}
	case *save == "":
		// Neither flag: print the parsed table (sanity check / ad hoc use).
		if err := writeTable(os.Stdout, benches); err != nil {
			log.Fatal(err)
		}
	}
}

func writeArtifact(path string, art Artifact) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &art, nil
}

func writeTable(w *os.File, benches []Bench) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tns/op\tallocs/op\tB/op\tpackets/sec")
	for _, b := range benches {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%.0f\n",
			b.Name, b.NsPerOp, b.AllocsPerOp, b.BytesPerOp, b.PacketsPerSec)
	}
	return tw.Flush()
}

// writeComparison prints current-vs-baseline deltas. A positive ns/op or
// allocs/op delta is a regression; a positive packets/sec delta is an
// improvement.
func writeComparison(w *os.File, base *Artifact, cur []Bench) error {
	byName := make(map[string]Bench, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Pkg+" "+b.Name] = b
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tns/op\tdelta\tallocs/op\tdelta\tpackets/sec\tdelta")
	var missing int
	for _, b := range cur {
		old, ok := byName[b.Pkg+" "+b.Name]
		if !ok {
			fmt.Fprintf(tw, "%s\t%.0f\t(new)\t%.0f\t(new)\t%.0f\t(new)\n",
				b.Name, b.NsPerOp, b.AllocsPerOp, b.PacketsPerSec)
			continue
		}
		delete(byName, b.Pkg+" "+b.Name)
		fmt.Fprintf(tw, "%s\t%.0f\t%s\t%.0f\t%s\t%.0f\t%s\n",
			b.Name,
			b.NsPerOp, pctDelta(old.NsPerOp, b.NsPerOp),
			b.AllocsPerOp, absDelta(old.AllocsPerOp, b.AllocsPerOp),
			b.PacketsPerSec, pctDelta(old.PacketsPerSec, b.PacketsPerSec))
	}
	missing = len(byName)
	if err := tw.Flush(); err != nil {
		return err
	}
	if missing > 0 {
		fmt.Fprintf(w, "# %d baseline benchmarks not present in this run\n", missing)
	}
	return nil
}

// pctDelta renders the relative change from old to new ("+12.3%"), or
// "n/a" when the baseline value is unusable.
func pctDelta(old, new float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

// absDelta renders the absolute change for counts like allocs/op, where a
// relative change against a tiny base is noise.
func absDelta(old, new float64) string {
	return fmt.Sprintf("%+.0f", new-old)
}
