package main

import "fmt"

// regressions compares current benchmarks against the baseline and returns
// one line per regression beyond the threshold:
//
//   - ns/op grew by more than threshold (relative, e.g. 0.15 = +15%),
//   - packets/sec fell by more than threshold, or
//   - allocs/op increased at all (alloc counts are integers and the hot
//     path is pinned at zero, so any increase is a real regression, not
//     noise).
//
// Benchmarks present only in the baseline or only in the current run are
// not regressions — the benchmark set is allowed to evolve; the comparison
// table already marks them.
func regressions(base *Artifact, cur []Bench, threshold float64) []string {
	byName := make(map[string]Bench, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Pkg+" "+b.Name] = b
	}
	var out []string
	for _, b := range cur {
		old, ok := byName[b.Pkg+" "+b.Name]
		if !ok {
			continue
		}
		if old.NsPerOp > 0 && b.NsPerOp > old.NsPerOp*(1+threshold) {
			out = append(out, fmt.Sprintf("%s: ns/op %.0f -> %.0f (%+.1f%%, threshold %+.1f%%)",
				b.Name, old.NsPerOp, b.NsPerOp, (b.NsPerOp/old.NsPerOp-1)*100, threshold*100))
		}
		if b.AllocsPerOp > old.AllocsPerOp+0.5 {
			out = append(out, fmt.Sprintf("%s: allocs/op %.0f -> %.0f (any increase fails)",
				b.Name, old.AllocsPerOp, b.AllocsPerOp))
		}
		if old.PacketsPerSec > 0 && b.PacketsPerSec < old.PacketsPerSec*(1-threshold) {
			out = append(out, fmt.Sprintf("%s: packets/sec %.0f -> %.0f (%+.1f%%, threshold -%.1f%%)",
				b.Name, old.PacketsPerSec, b.PacketsPerSec, (b.PacketsPerSec/old.PacketsPerSec-1)*100, threshold*100))
		}
	}
	return out
}
