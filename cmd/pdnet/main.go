// Command pdnet runs the multi-hop simulation of Study B once and prints
// the end-to-end differentiation metrics.
//
// Example:
//
//	pdnet -hops 8 -rho 0.95 -flow-packets 100 -flow-kbps 200
package main

import (
	"flag"
	"fmt"
	"log"

	"pdds"
	"pdds/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdnet: ")

	var (
		hops        = flag.Int("hops", 4, "congested hops K")
		rho         = flag.Float64("rho", 0.95, "per-link utilization")
		sdpStr      = flag.String("sdp", "1,2,4,8", "per-hop scheduler parameters")
		sched       = flag.String("sched", "wtp", "per-hop scheduler: wtp|bpr|strict|wfq|drr|additive|pad|hpd")
		flowPackets = flag.Int("flow-packets", 10, "user-flow length F, packets")
		flowKbps    = flag.Float64("flow-kbps", 50, "user-flow average rate R_u, kbps")
		experiments = flag.Int("experiments", 100, "user experiments M (one per second)")
		warmup      = flag.Float64("warmup", 100, "warm-up, seconds")
		seed        = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	sdp, err := cliutil.ParseFloats(*sdpStr)
	if err != nil {
		log.Fatalf("-sdp: %v", err)
	}
	rep, err := pdds.SimulatePath(pdds.PathConfig{
		Hops:        *hops,
		Scheduler:   pdds.SchedulerKind(*sched),
		Utilization: *rho,
		SDP:         sdp,
		FlowPackets: *flowPackets,
		FlowKbps:    *flowKbps,
		Experiments: *experiments,
		WarmupSec:   *warmup,
		Seed:        *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("K=%d rho=%.2f F=%d Ru=%gkbps M=%d realized-utilization=%.3f\n",
		*hops, *rho, *flowPackets, *flowKbps, *experiments, rep.Utilization)
	fmt.Printf("R_D = %.3f (ideal %.2f)\n", rep.RD, sdp[1]/sdp[0])
	fmt.Printf("inconsistent percentile comparisons: %d (in %d experiments)\n",
		rep.Inconsistent, rep.InconsistentExperiments)
	for c, d := range rep.MeanE2E {
		fmt.Printf("class %d mean end-to-end queueing delay: %.3f ms\n", c+1, d*1000)
	}
}
