// Command pdnet runs the multi-hop simulation of Study B once and prints
// the end-to-end differentiation metrics.
//
// Example:
//
//	pdnet -hops 8 -rho 0.95 -flow-packets 100 -flow-kbps 200
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"pdds"
	"pdds/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdnet: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the CLI against args, writing the report to stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pdnet", flag.ContinueOnError)
	var (
		hops        = fs.Int("hops", 4, "congested hops K")
		rho         = fs.Float64("rho", 0.95, "per-link utilization")
		sdpStr      = fs.String("sdp", "1,2,4,8", "per-hop scheduler parameters")
		sched       = fs.String("sched", "wtp", "per-hop scheduler: wtp|bpr|strict|wfq|drr|additive|pad|hpd")
		flowPackets = fs.Int("flow-packets", 10, "user-flow length F, packets")
		flowKbps    = fs.Float64("flow-kbps", 50, "user-flow average rate R_u, kbps")
		experiments = fs.Int("experiments", 100, "user experiments M (one per second)")
		warmup      = fs.Float64("warmup", 100, "warm-up, seconds")
		seed        = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sdp, err := cliutil.ParseFloats(*sdpStr)
	if err != nil {
		return fmt.Errorf("-sdp: %w", err)
	}
	if len(sdp) < 2 {
		return fmt.Errorf("-sdp: need at least two classes, got %v", sdp)
	}
	rep, err := pdds.SimulatePath(pdds.PathConfig{
		Hops:        *hops,
		Scheduler:   pdds.SchedulerKind(*sched),
		Utilization: *rho,
		SDP:         sdp,
		FlowPackets: *flowPackets,
		FlowKbps:    *flowKbps,
		Experiments: *experiments,
		WarmupSec:   *warmup,
		Seed:        *seed,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "K=%d rho=%.2f F=%d Ru=%gkbps M=%d realized-utilization=%.3f\n",
		*hops, *rho, *flowPackets, *flowKbps, *experiments, rep.Utilization)
	fmt.Fprintf(stdout, "R_D = %.3f (ideal %.2f)\n", rep.RD, sdp[1]/sdp[0])
	fmt.Fprintf(stdout, "inconsistent percentile comparisons: %d (in %d experiments)\n",
		rep.Inconsistent, rep.InconsistentExperiments)
	for c, d := range rep.MeanE2E {
		fmt.Fprintf(stdout, "class %d mean end-to-end queueing delay: %.3f ms\n", c+1, d*1000)
	}
	return nil
}
