package main

import (
	"io"
	"strings"
	"testing"
)

// TestRunSmoke exercises the multi-hop CLI on a tiny config and checks
// the report shape.
func TestRunSmoke(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-hops", "2", "-rho", "0.9", "-sdp", "1,4",
		"-experiments", "2", "-warmup", "2",
		"-flow-packets", "5", "-flow-kbps", "50",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"K=2 rho=0.90",
		"R_D =",
		"(ideal 4.00)",
		"inconsistent percentile comparisons",
		"class 1 mean end-to-end queueing delay",
		"class 2 mean end-to-end queueing delay",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-sdp", "1"},                  // single class: no ratio to report
		{"-sdp", "nope"},               // unparsable SDP
		{"-sched", "bogus"},            // unknown scheduler
		{"-badflag"},                   // unknown flag
		{"-hops", "-1", "-sdp", "1,2"}, // no congested hops (0 takes the default)
	}
	for _, args := range cases {
		args = append(args, "-experiments", "1", "-warmup", "1")
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}
