// Command pdstress is the long-horizon chaos harness: it fans the
// standard scenario catalog (internal/chaos.Plans) out over a scheduler
// matrix on the parallel replication runner, drives millions of packets
// through perturbed simulations at -scale full, and judges every run's
// invariants — exact packet conservation, packet-pool leak freedom,
// telemetry-counter monotonicity, and per-load-regime PDD ratio windows.
// The catalog's flow-churn plan additionally exercises a live classifier
// flow table (synthetic flow populations retired mid-run under TTL
// eviction) and fails on any inconsistent classification answer.
// With -net it also drives the live UDP forwarder through the standard
// egress fault plans (corruption, duplication, reordering, transient and
// persistent write errors) over loopback.
//
// Runs are exactly reproducible: the whole sim matrix derives from -seed,
// and two invocations with the same flags produce byte-identical -json
// reports. pdstress exits non-zero if any run reports a violation, so
// `make stress` is a pass/fail gate.
//
// Example:
//
//	pdstress -scale quick -sched wtp,bpr,fcfs -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"pdds/internal/chaos"
	"pdds/internal/cliutil"
	"pdds/internal/core"
	"pdds/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdstress: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// scaleHorizons maps -scale names to simulation horizons in time units.
// At the paper workload a time unit carries ~0.085 packets, so quick is
// ~17k packets per run (CI smoke) and full is ~500k per run — about 13M
// packets over the default 9×3 matrix.
var scaleHorizons = map[string]float64{
	"quick": 2e5,
	"full":  6e6,
}

type report struct {
	Scale      string             `json:"scale"`
	Horizon    float64            `json:"horizon"`
	Seed       uint64             `json:"seed"`
	Schedulers []string           `json:"schedulers"`
	Sim        []*chaos.SimResult `json:"sim"`
	Net        []*chaos.NetResult `json:"net,omitempty"`
	Packets    uint64             `json:"packets"` // departed across the sim matrix
	Failures   int                `json:"failures"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pdstress", flag.ContinueOnError)
	scale := fs.String("scale", "quick", "run scale: quick or full")
	horizon := fs.Float64("horizon", 0, "override the horizon in time units (0 = from -scale)")
	seed := fs.Uint64("seed", 1, "base seed for the whole matrix")
	scheds := fs.String("sched", "wtp,bpr,fcfs", "comma-separated scheduler kinds")
	planFilter := fs.String("plans", "", "comma-separated plan names to run (default all)")
	parallel := fs.Int("parallel", 0, "max concurrent runs (0 = GOMAXPROCS)")
	withNet := fs.Bool("net", false, "also run the live-forwarder egress fault plans")
	netDur := fs.Duration("net-duration", 400*time.Millisecond, "sending phase per live fault plan")
	asJSON := fs.Bool("json", false, "emit the full JSON report")
	if err := fs.Parse(args); err != nil {
		return err
	}

	h, ok := scaleHorizons[*scale]
	if !ok {
		return fmt.Errorf("unknown -scale %q (want quick or full)", *scale)
	}
	if *horizon > 0 {
		h = *horizon
	}
	var kinds []core.Kind
	for _, s := range strings.Split(*scheds, ",") {
		kinds = append(kinds, core.Kind(strings.TrimSpace(s)))
	}
	keep := map[string]bool{}
	for _, s := range strings.Split(*planFilter, ",") {
		if s = strings.TrimSpace(s); s != "" {
			keep[s] = true
		}
	}
	if *parallel > 0 {
		experiments.SetParallelism(*parallel)
	}

	// Assemble the matrix up front: result order (and so the report) is a
	// pure function of the flags, whatever the worker count does.
	var plans []chaos.SimPlan
	for _, kind := range kinds {
		for _, p := range chaos.Plans(kind, h, *seed) {
			if len(keep) > 0 && !keep[p.Name] {
				continue
			}
			plans = append(plans, p)
		}
	}
	if len(plans) == 0 {
		return fmt.Errorf("no plans selected")
	}

	rep := &report{Scale: *scale, Horizon: h, Seed: *seed, Sim: make([]*chaos.SimResult, len(plans))}
	for _, k := range kinds {
		rep.Schedulers = append(rep.Schedulers, string(k))
	}
	if err := experiments.ForEach(len(plans), func(i int) error {
		res, err := chaos.RunSim(plans[i])
		if err != nil {
			return fmt.Errorf("%s/%s: %w", plans[i].Kind, plans[i].Name, err)
		}
		rep.Sim[i] = res
		return nil
	}); err != nil {
		return err
	}
	for _, r := range rep.Sim {
		rep.Packets += r.Departed
		if !r.Ok() {
			rep.Failures++
		}
	}

	if *withNet {
		for _, np := range chaos.NetPlans() {
			np.Duration = *netDur
			res, err := chaos.RunNet(np)
			if err != nil {
				return fmt.Errorf("net/%s: %w", np.Name, err)
			}
			rep.Net = append(rep.Net, res)
			if !res.Ok() {
				rep.Failures++
			}
		}
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		printText(stdout, rep)
	}
	if rep.Failures > 0 {
		return fmt.Errorf("%d of %d runs violated invariants", rep.Failures, len(rep.Sim)+len(rep.Net))
	}
	return nil
}

func printText(w io.Writer, rep *report) {
	fmt.Fprintf(w, "scale=%s horizon=%g seed=%d packets=%d\n", rep.Scale, rep.Horizon, rep.Seed, rep.Packets)
	for _, r := range rep.Sim {
		judged := 0
		for _, s := range r.Segments {
			if s.Judged {
				judged++
			}
		}
		status := "ok"
		if !r.Ok() {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  %-8s %-14s %s  dep=%-8d drop=%-6d util=%.3f ratios=%s judged=%d/%d\n",
			r.Scheduler, r.Plan, status, r.Departed, r.Dropped, r.Utilization,
			cliutil.FormatFloats(r.Ratios), judged, len(r.Segments))
		for _, v := range r.Violations {
			fmt.Fprintf(w, "      violation: %s\n", v)
		}
	}
	for _, r := range rep.Net {
		status := "ok"
		if !r.Ok() {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  net      %-18s %s  conserved=%v forwarded=%v faults=%v\n",
			r.Plan, status, r.Conserved, r.ForwardedSome, r.FaultsInjected)
		for _, v := range r.Violations {
			fmt.Fprintf(w, "      violation: %s\n", v)
		}
	}
	if rep.Failures == 0 {
		fmt.Fprintf(w, "all %d runs ok\n", len(rep.Sim)+len(rep.Net))
	}
}
