package main

import (
	"strings"
	"testing"
)

// stressArgs is a fast matrix: a short horizon override keeps the whole
// 8×3 catalog around a second even under -race.
func stressArgs(extra ...string) []string {
	return append([]string{"-scale", "quick", "-horizon", "20000", "-seed", "7"}, extra...)
}

// TestRunJSONDeterministic is the headline reproducibility contract:
// same flags ⇒ byte-identical -json reports, across worker counts too.
func TestRunJSONDeterministic(t *testing.T) {
	var a, b, serial strings.Builder
	if err := run(stressArgs("-json"), &a); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := run(stressArgs("-json"), &b); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.String() != b.String() {
		t.Fatal("two identical invocations produced different -json reports")
	}
	if err := run(stressArgs("-json", "-parallel", "1"), &serial); err != nil {
		t.Fatalf("serial run: %v", err)
	}
	if serial.String() != a.String() {
		t.Fatal("-parallel 1 changed the -json report (result order must not depend on workers)")
	}

	// A different seed must actually change the matrix, or the identity
	// checks above are vacuous.
	var other strings.Builder
	if err := run([]string{"-scale", "quick", "-horizon", "20000", "-seed", "8", "-json"}, &other); err != nil {
		t.Fatalf("reseeded run: %v", err)
	}
	if other.String() == a.String() {
		t.Fatal("changing -seed left the report identical")
	}
}

// TestRunTextSmoke: the human-readable renderer covers every run in the
// matrix and reports overall success.
func TestRunTextSmoke(t *testing.T) {
	var out strings.Builder
	if err := run(stressArgs(), &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"WTP", "BPR", "FCFS", "steady-heavy", "burst-train", "flow-churn", "all 27 runs ok"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}
}

// TestRunPlanAndSchedFilters: -plans and -sched shrink the matrix.
func TestRunPlanAndSchedFilters(t *testing.T) {
	var out strings.Builder
	err := run(stressArgs("-sched", "wtp", "-plans", "steady-heavy,link-flap"), &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "all 2 runs ok") {
		t.Errorf("filtered matrix should be 2 runs:\n%s", text)
	}
	if strings.Contains(text, "BPR") || strings.Contains(text, "load-ramp") {
		t.Errorf("filtered-out runs leaked into the report:\n%s", text)
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "huge"}, &out); err == nil ||
		!strings.Contains(err.Error(), "unknown -scale") {
		t.Errorf("bad -scale: err = %v", err)
	}
	if err := run(stressArgs("-plans", "no-such-plan"), &out); err == nil ||
		!strings.Contains(err.Error(), "no plans selected") {
		t.Errorf("empty selection: err = %v", err)
	}
}

// TestRunNetSmoke drives the live-forwarder fault plans briefly over
// loopback; the sim matrix is cut to one run to keep the test tight.
func TestRunNetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live loopback fault plans")
	}
	var out strings.Builder
	err := run(stressArgs("-sched", "wtp", "-plans", "steady-poisson",
		"-net", "-net-duration", "150ms", "-json"), &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"wire-corrupt", "wire-dup-reorder", "transient-errors", "persistent-outage"} {
		if !strings.Contains(text, want) {
			t.Errorf("net report missing plan %q", want)
		}
	}
}
