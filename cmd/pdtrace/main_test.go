package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdds/internal/core"
	"pdds/internal/traffic"
)

func writeTempTrace(t *testing.T) string {
	t.Helper()
	tr, err := traffic.Record(traffic.PaperLoad(0.9), 441.0/11.2, 30000, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRecordReplayCompareSubcommands(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "rec.csv")
	if err := record([]string{"-rho", "0.9", "-horizon", "20000", "-out", out}, io.Discard); err != nil {
		t.Fatalf("record: %v", err)
	}
	var replayOut strings.Builder
	if err := replay([]string{"-in", out}, &replayOut); err != nil {
		t.Fatalf("replay: %v", err)
	}
	for _, want := range []string{"class", "mean-delay", "d1/d2"} {
		if !strings.Contains(replayOut.String(), want) {
			t.Errorf("replay output missing %q:\n%s", want, replayOut.String())
		}
	}
	var compareOut strings.Builder
	if err := compare([]string{"-in", out}, &compareOut); err != nil {
		t.Fatalf("compare: %v", err)
	}
	for _, want := range []string{"scheduler", "conservation law", "wtp", "fcfs"} {
		if !strings.Contains(compareOut.String(), want) {
			t.Errorf("compare output missing %q:\n%s", want, compareOut.String())
		}
	}
}

// TestRunDispatch drives the same paths main does, through the dispatcher.
func TestRunDispatch(t *testing.T) {
	if err := run(nil, io.Discard); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"bogus"}, io.Discard); err == nil {
		t.Error("unknown subcommand accepted")
	}
	out := filepath.Join(t.TempDir(), "rec.csv")
	if err := run([]string{"record", "-rho", "0.9", "-horizon", "20000", "-out", out}, io.Discard); err != nil {
		t.Fatalf("run record: %v", err)
	}
	var sb strings.Builder
	if err := run([]string{"replay", "-in", out, "-sched", "strict"}, &sb); err != nil {
		t.Fatalf("run replay: %v", err)
	}
	if !strings.Contains(sb.String(), "class") {
		t.Errorf("replay via run produced no table:\n%s", sb.String())
	}
}

func TestReplayErrors(t *testing.T) {
	if err := replay([]string{}, io.Discard); err == nil {
		t.Error("missing -in accepted")
	}
	if err := replay([]string{"-in", "/nonexistent/file.csv"}, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
	path := writeTempTrace(t)
	if err := replay([]string{"-in", path, "-sdp", "1,2"}, io.Discard); err == nil {
		t.Error("SDP/class mismatch accepted")
	}
	if err := replay([]string{"-in", path, "-sched", "bogus"}, io.Discard); err == nil {
		t.Error("bogus scheduler accepted")
	}
}

func TestCompareErrors(t *testing.T) {
	if err := compare([]string{}, io.Discard); err == nil {
		t.Error("missing -in accepted")
	}
	path := writeTempTrace(t)
	if err := compare([]string{"-in", path, "-sdp", "1,2"}, io.Discard); err == nil {
		t.Error("SDP/class mismatch accepted")
	}
}

// Conservation across all schedulers, exercised through the replay helper
// the CLI uses.
func TestReplayOnceConservation(t *testing.T) {
	tr, err := traffic.Record(traffic.PaperLoad(0.95), 441.0/11.2, 30000, 9)
	if err != nil {
		t.Fatal(err)
	}
	sdp := []float64{1, 2, 4, 8}
	var ref float64
	for i, kind := range core.Kinds() {
		delays, err := replayOnce(tr, kind, sdp)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = delays.SumLW()
			continue
		}
		if got := delays.SumLW(); got != ref {
			rel := (got - ref) / ref
			if rel < -1e-9 || rel > 1e-9 {
				t.Errorf("%s: SumLW %g vs reference %g", kind, got, ref)
			}
		}
	}
}
