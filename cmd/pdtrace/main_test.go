package main

import (
	"os"
	"path/filepath"
	"testing"

	"pdds/internal/core"
	"pdds/internal/traffic"
)

func writeTempTrace(t *testing.T) string {
	t.Helper()
	tr, err := traffic.Record(traffic.PaperLoad(0.9), 441.0/11.2, 30000, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRecordReplayCompareSubcommands(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "rec.csv")
	if err := record([]string{"-rho", "0.9", "-horizon", "20000", "-out", out}); err != nil {
		t.Fatalf("record: %v", err)
	}
	if err := replay([]string{"-in", out}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := compare([]string{"-in", out}); err != nil {
		t.Fatalf("compare: %v", err)
	}
}

func TestReplayErrors(t *testing.T) {
	if err := replay([]string{}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := replay([]string{"-in", "/nonexistent/file.csv"}); err == nil {
		t.Error("missing file accepted")
	}
	path := writeTempTrace(t)
	if err := replay([]string{"-in", path, "-sdp", "1,2"}); err == nil {
		t.Error("SDP/class mismatch accepted")
	}
	if err := replay([]string{"-in", path, "-sched", "bogus"}); err == nil {
		t.Error("bogus scheduler accepted")
	}
}

func TestCompareErrors(t *testing.T) {
	if err := compare([]string{}); err == nil {
		t.Error("missing -in accepted")
	}
	path := writeTempTrace(t)
	if err := compare([]string{"-in", path, "-sdp", "1,2"}); err == nil {
		t.Error("SDP/class mismatch accepted")
	}
}

// Conservation across all schedulers, exercised through the replay helper
// the CLI uses.
func TestReplayOnceConservation(t *testing.T) {
	tr, err := traffic.Record(traffic.PaperLoad(0.95), 441.0/11.2, 30000, 9)
	if err != nil {
		t.Fatal(err)
	}
	sdp := []float64{1, 2, 4, 8}
	var ref float64
	for i, kind := range core.Kinds() {
		delays, err := replayOnce(tr, kind, sdp)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = delays.SumLW()
			continue
		}
		if got := delays.SumLW(); got != ref {
			rel := (got - ref) / ref
			if rel < -1e-9 || rel > 1e-9 {
				t.Errorf("%s: SumLW %g vs reference %g", kind, got, ref)
			}
		}
	}
}
