// Command pdtrace records arrival traces and replays them through
// schedulers. Replaying the *same* trace makes scheduler comparisons
// exact: every discipline sees the identical packet sequence, and the
// conservation law (Σ L·W identical across work-conserving schedulers)
// can be checked on real output.
//
// Subcommands:
//
//	pdtrace record  -rho 0.95 -horizon 1e6 -seed 1 -out trace.csv
//	pdtrace replay  -in trace.csv -sched wtp -sdp 1,2,4,8
//	pdtrace compare -in trace.csv -sdp 1,2,4,8
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"

	"pdds/internal/cliutil"
	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/sim"
	"pdds/internal/stats"
	"pdds/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdtrace: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run dispatches to the subcommands, writing reports to stdout.
func run(args []string, stdout io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: pdtrace record|replay|compare [flags]")
	}
	switch args[0] {
	case "record":
		return record(args[1:], stdout)
	case "replay":
		return replay(args[1:], stdout)
	case "compare":
		return compare(args[1:], stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (want record, replay or compare)", args[0])
	}
}

func record(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	var (
		rho       = fs.Float64("rho", 0.95, "offered utilization")
		fractions = fs.String("fractions", "0.40,0.30,0.20,0.10", "class load distribution")
		horizon   = fs.Float64("horizon", 1e6, "trace length, time units")
		seed      = fs.Uint64("seed", 1, "random seed")
		out       = fs.String("out", "", "output file (default stdout)")
		poisson   = fs.Bool("poisson", false, "exponential instead of Pareto interarrivals")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	frac, err := cliutil.ParseFloats(*fractions)
	if err != nil {
		return fmt.Errorf("-fractions: %w", err)
	}
	tr, err := traffic.Record(traffic.LoadSpec{
		Rho:       *rho,
		Fractions: frac,
		Sizes:     traffic.PaperSizes(),
		Alpha:     1.9,
		Poisson:   *poisson,
	}, link.PaperLinkRate, *horizon, *seed)
	if err != nil {
		return err
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pdtrace: recorded %d arrivals over %g time units\n", len(tr.Arrivals), tr.Horizon)
	return nil
}

func loadTrace(path string) (*traffic.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return traffic.ReadTraceCSV(f)
}

// replayOnce drains the trace through one scheduler and returns per-class
// delays.
func replayOnce(tr *traffic.Trace, kind core.Kind, sdp []float64) (*stats.ClassDelays, error) {
	engine := sim.NewEngine()
	sched, err := core.New(kind, sdp, link.PaperLinkRate)
	if err != nil {
		return nil, err
	}
	l := link.New(engine, link.PaperLinkRate, sched)
	delays := stats.NewClassDelays(len(sdp))
	l.OnDepart = func(p *core.Packet) { delays.Observe(p) }
	tr.Replay(engine, l.Arrive)
	engine.RunAll()
	return delays, nil
}

func replay(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "trace CSV file (required)")
		sched  = fs.String("sched", "wtp", "scheduler kind")
		sdpStr = fs.String("sdp", "1,2,4,8", "scheduler differentiation parameters")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	sdp, err := cliutil.ParseFloats(*sdpStr)
	if err != nil {
		return fmt.Errorf("-sdp: %w", err)
	}
	tr, err := loadTrace(*in)
	if err != nil {
		return err
	}
	if len(sdp) != tr.Classes {
		return fmt.Errorf("%d SDPs for a %d-class trace", len(sdp), tr.Classes)
	}
	delays, err := replayOnce(tr, core.Kind(*sched), sdp)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "class\tpackets\tmean-delay\tmean-delay(p-units)")
	for c := 0; c < tr.Classes; c++ {
		fmt.Fprintf(w, "%d\t%d\t%.1f\t%.2f\n", c+1, delays.Count(c), delays.Mean(c), delays.Mean(c)/link.PUnit)
	}
	w.Flush()
	for i, r := range delays.SuccessiveRatios() {
		fmt.Fprintf(stdout, "d%d/d%d = %.3f\n", i+1, i+2, r)
	}
	return nil
}

func compare(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "trace CSV file (required)")
		sdpStr = fs.String("sdp", "1,2,4,8", "scheduler differentiation parameters")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	sdp, err := cliutil.ParseFloats(*sdpStr)
	if err != nil {
		return fmt.Errorf("-sdp: %w", err)
	}
	tr, err := loadTrace(*in)
	if err != nil {
		return err
	}
	if len(sdp) != tr.Classes {
		return fmt.Errorf("%d SDPs for a %d-class trace", len(sdp), tr.Classes)
	}

	w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheduler\tratios\tsum(L*W) bytes*tu")
	var ref float64
	for _, kind := range core.Kinds() {
		delays, err := replayOnce(tr, kind, sdp)
		if err != nil {
			return err
		}
		ratios := ""
		for i, r := range delays.SuccessiveRatios() {
			if i > 0 {
				ratios += " / "
			}
			ratios += fmt.Sprintf("%.2f", r)
		}
		fmt.Fprintf(w, "%s\t%s\t%.6g\n", kind, ratios, delays.SumLW())
		if kind == core.KindFCFS {
			ref = delays.SumLW()
		}
	}
	w.Flush()
	fmt.Fprintf(stdout, "conservation law: Σ L·W identical across schedulers (FCFS reference %.6g)\n", ref)
	return nil
}
