package pdds

import (
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"
)

// TestTelemetryLiveRatiosMatchSDPs is the observability acceptance
// criterion: with telemetry enabled on a ρ=0.95 WTP single-link run, the
// /metrics-style snapshot reports adjacent-class delay ratios within 10%
// of the SDP-implied targets (2, 2, 2 for SDPs 1,2,4,8). The run is
// seeded, so the assertion is deterministic.
func TestTelemetryLiveRatiosMatchSDPs(t *testing.T) {
	sdp := []float64{1, 2, 4, 8}
	tel := NewTelemetry(sdp)
	rep, err := SimulateLink(LinkConfig{
		Scheduler:   WTP,
		SDP:         sdp,
		Utilization: 0.95,
		Telemetry:   tel,
	})
	if err != nil {
		t.Fatal(err)
	}

	ratios := tel.Ratios()
	targets := tel.TargetRatios()
	if len(ratios) != 3 || len(targets) != 3 {
		t.Fatalf("ratios %v targets %v", ratios, targets)
	}
	for i, r := range ratios {
		if math.Abs(r/targets[i]-1) > 0.10 {
			t.Errorf("live ratio[%d] = %.3f, more than 10%% from target %g", i, r, targets[i])
		}
	}
	if dev, pairs := tel.Deviation(); pairs != 3 || dev > 0.10 {
		t.Errorf("deviation %.3f over %d pairs, want <= 0.10 over 3", dev, pairs)
	}

	// Telemetry counters must agree with the simulation's own
	// accounting (telemetry sees warm-up traffic too, so departures can
	// only exceed the post-warm-up report).
	classes := tel.Classes()
	var departures uint64
	for _, c := range classes {
		departures += c.Departures
		if c.DelayP95 < c.DelayP50 || c.DelayMax < c.DelayP99 {
			t.Errorf("class %d quantiles out of order: %+v", c.Class, c)
		}
	}
	var reported uint64
	for _, cs := range rep.Classes {
		reported += cs.Packets
	}
	if departures < reported {
		t.Fatalf("telemetry saw %d departures, report has %d", departures, reported)
	}

	// The live ratios and the post-run report measure the same system:
	// mean-delay ratios agree to a few percent (different warm-up
	// handling).
	for i, r := range rep.DelayRatios {
		if ratios[i] != 0 && math.Abs(ratios[i]/r-1) > 0.05 {
			t.Errorf("live ratio[%d] %.3f vs report ratio %.3f", i, ratios[i], r)
		}
	}
}

// TestTelemetryHTTPFacade serves a simulation's telemetry over HTTP and
// checks the /metrics JSON view.
func TestTelemetryHTTPFacade(t *testing.T) {
	tel := NewTelemetry([]float64{1, 2})
	if _, err := SimulateLink(LinkConfig{
		SDP:            []float64{1, 2},
		ClassFractions: []float64{0.5, 0.5},
		Utilization:    0.9,
		Horizon:        5e4,
		Warmup:         5e3,
		Telemetry:      tel,
	}); err != nil {
		t.Fatal(err)
	}
	addr, err := tel.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tel.Close()

	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Classes []struct {
			Departures uint64 `json:"departures"`
		} `json:"classes"`
		Ratios []float64 `json:"delay_ratios"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if len(m.Classes) != 2 || m.Classes[0].Departures == 0 || len(m.Ratios) != 1 || m.Ratios[0] <= 1 {
		t.Fatalf("metrics %+v", m)
	}
	if text := tel.Text(); !strings.Contains(text, "ratio 0/1") {
		t.Fatalf("text view:\n%s", text)
	}
}

// TestTelemetryOnPath attaches one registry across all hops of a Study B
// miniature and checks hop-aggregated accounting.
func TestTelemetryOnPath(t *testing.T) {
	tel := NewTelemetry([]float64{1, 2, 4, 8})
	rep, err := SimulatePath(PathConfig{
		Hops:        2,
		Utilization: 0.85,
		Experiments: 5,
		WarmupSec:   5,
		Telemetry:   tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RD <= 1 {
		t.Fatalf("path RD %g", rep.RD)
	}
	classes := tel.Classes()
	var departures uint64
	for _, c := range classes {
		departures += c.Departures
	}
	if departures == 0 {
		t.Fatal("path telemetry saw no departures")
	}
	// Every user packet crosses both hops; cross-traffic exits after
	// one. Arrivals across the registry must be at least departures
	// (drops are impossible in the lossless model).
	var arrivals uint64
	for _, c := range classes {
		arrivals += c.Arrivals
		if c.Drops != 0 {
			t.Errorf("class %d drops %d in lossless model", c.Class, c.Drops)
		}
	}
	if arrivals < departures {
		t.Fatalf("arrivals %d < departures %d", arrivals, departures)
	}
}
