package pdds

// One benchmark per table and figure of the paper's evaluation, driven by
// the same experiment code as cmd/pdexp (at the reduced Bench scale so an
// iteration stays sub-second), plus micro-benchmarks of the schedulers
// themselves. Regenerating the paper's numbers at full fidelity is
// cmd/pdexp's job; these benches make the full pipeline part of
// `go test -bench`.

import (
	"io"
	"testing"

	"pdds/internal/core"
	"pdds/internal/ecn"
	"pdds/internal/experiments"
	"pdds/internal/link"
	"pdds/internal/model"
	"pdds/internal/telemetry"
	"pdds/internal/traffic"
)

func benchScale() experiments.Scale { return experiments.Bench }

func BenchmarkFig1a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig1(experiments.PaperSDPx2, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.WriteFig1TSV(io.Discard, points, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig1(experiments.PaperSDPx4, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.WriteFig1TSV(io.Discard, points, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig2(experiments.PaperSDPx2, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.WriteFig2TSV(io.Discard, points, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig2(experiments.PaperSDPx4, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.WriteFig2TSV(io.Discard, points, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig3(experiments.PaperSDPx2, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.WriteFig3TSV(io.Discard, points); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4BPRMicro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Micro(core.KindBPR, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.WriteMicroSeriesCSV(io.Discard, res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5WTPMicro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Micro(core.KindWTP, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.WriteMicroSeriesCSV(io.Discard, res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Table1(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.WriteTable1TSV(io.Discard, cells); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeasibility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Feasibility(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.WriteFeasibilityTSV(io.Discard, points); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Ablation(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.WriteAblationTSV(io.Discard, points); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduler measures raw enqueue+dequeue throughput of each
// discipline with four busy classes.
func BenchmarkScheduler(b *testing.B) {
	for _, kind := range core.Kinds() {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			s, err := core.New(kind, []float64{1, 2, 4, 8}, link.PaperLinkRate)
			if err != nil {
				b.Fatal(err)
			}
			// Pre-fill so dequeues always find work.
			pkts := make([]*core.Packet, 64)
			for i := range pkts {
				pkts[i] = &core.Packet{ID: uint64(i), Class: i % 4, Size: 550}
			}
			for i, p := range pkts {
				s.Enqueue(p, float64(i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			now := 100.0
			for i := 0; i < b.N; i++ {
				now++
				p := s.Dequeue(now)
				p.Arrival = now
				s.Enqueue(p, now)
			}
		})
	}
}

// BenchmarkSingleLink measures end-to-end simulation throughput: events
// per second of the full source→scheduler→link pipeline.
func BenchmarkSingleLink(b *testing.B) {
	for _, kind := range []core.Kind{core.KindWTP, core.KindBPR, core.KindFCFS} {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := link.Run(link.RunConfig{
					Kind:    kind,
					SDP:     []float64{1, 2, 4, 8},
					Load:    traffic.PaperLoad(0.95),
					Horizon: 5e4,
					Warmup:  5e3,
					Seed:    uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Departed == 0 {
					b.Fatal("no packets")
				}
			}
		})
	}
}

// BenchmarkTelemetryOverhead compares the single-link hot path with and
// without a telemetry registry attached: identical seeded runs, so the
// "on"/"off" delta is purely the instrumentation cost (per-packet counter
// updates and histogram records; the registry itself is one allocation
// per run, not per packet).
func BenchmarkTelemetryOverhead(b *testing.B) {
	base := link.RunConfig{
		Kind:    core.KindWTP,
		SDP:     []float64{1, 2, 4, 8},
		Load:    traffic.PaperLoad(0.95),
		Horizon: 5e4,
		Warmup:  5e3,
	}
	for _, mode := range []string{"off", "on"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			var reg *telemetry.Registry
			if mode == "on" {
				reg = telemetry.NewWithSDP(base.SDP)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := base
				cfg.Seed = uint64(i + 1)
				cfg.Telemetry = reg
				res, err := link.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Departed == 0 {
					b.Fatal("no packets")
				}
			}
		})
	}
}

func BenchmarkLossExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Loss(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.WriteLossTSV(io.Discard, points); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModerateExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Moderate(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.WriteModerateTSV(io.Discard, points); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodec measures header encode+decode round trips.
func BenchmarkCodec(b *testing.B) {
	b.ReportAllocs()
	dst := make([]byte, 0, 64)
	var sink uint64
	for i := 0; i < b.N; i++ {
		dst = dst[:0]
		dst = EncodeDatagram(2, uint64(i), nil)
		_, seq, _, _, err := DecodeDatagram(dst)
		if err != nil {
			b.Fatal(err)
		}
		sink += seq
	}
	_ = sink
}

// BenchmarkFluidBPRDrain measures the RK4 backlog integrator.
func BenchmarkFluidBPRDrain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := core.NewFluidBPR([]float64{1, 2, 4, 8}, 100)
		for c := 0; c < 4; c++ {
			f.Add(c, 1000)
		}
		f.Drain(f.TimeToEmpty()*0.9, 64)
	}
}

// BenchmarkDCS measures the dynamic class selection simulation.
func BenchmarkDCS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := SimulateAdaptation(AdaptConfig{
			Users: []AdaptiveUser{
				{TargetPUnits: 3, LoadFraction: 0.03},
				{TargetPUnits: 300, LoadFraction: 0.03},
			},
			BackgroundLoad: 0.85,
			HorizonPUnits:  5000,
			Seed:           uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Users) != 2 {
			b.Fatal("bad report")
		}
	}
}

// BenchmarkECNClosedLoop measures the AIMD/ECN closed-loop simulation.
func BenchmarkECNClosedLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ecn.Run(ecn.Config{
			SDP: []float64{1, 2, 4, 8},
			Sources: []ecn.SourceConfig{
				{Class: 0, InitialRate: 2, MinRate: 0.2},
				{Class: 3, InitialRate: 2, MinRate: 0.2},
			},
			Horizon: 50000,
			Warmup:  5000,
			Seed:    uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Utilization <= 0 {
			b.Fatal("no traffic")
		}
	}
}

// BenchmarkTraceReplay measures trace recording + FCFS replay throughput.
func BenchmarkTraceReplay(b *testing.B) {
	tr, err := traffic.Record(traffic.PaperLoad(0.95), link.PaperLinkRate, 50000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := model.FCFSMeanDelay(tr, link.PaperLinkRate); d <= 0 {
			b.Fatal("no delay measured")
		}
	}
}

// BenchmarkFeasibilityCheck measures a full Eq. (7) evaluation (14 FCFS
// sub-simulations on a recorded trace).
func BenchmarkFeasibilityCheck(b *testing.B) {
	tr, err := traffic.Record(traffic.PaperLoad(0.9), link.PaperLinkRate, 50000, 1)
	if err != nil {
		b.Fatal(err)
	}
	ddp := model.DDPsFromSDPs([]float64{1, 2, 4, 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := model.CheckDDPs(tr, link.PaperLinkRate, ddp)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Conditions) != 14 {
			b.Fatal("wrong condition count")
		}
	}
}

func BenchmarkPathSched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.PathSched(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.WritePathSchedTSV(io.Discard, points); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHPDGSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.HPDG(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.WriteHPDGTSV(io.Discard, points); err != nil {
			b.Fatal(err)
		}
	}
}
