package pdds

// One benchmark per table and figure of the paper's evaluation, driven by
// the same experiment code as cmd/pdexp (at the reduced Bench scale so an
// iteration stays sub-second), plus micro-benchmarks of the schedulers,
// the event engine and the packet free list. Regenerating the paper's
// numbers at full fidelity is cmd/pdexp's job; these benches make the full
// pipeline part of `go test -bench`.
//
// Every benchmark reports allocations and a packets/sec metric (simulated
// packets completed per wall-clock second), so `make bench-save` /
// `make bench-cmp` track both the allocation profile and end-to-end
// throughput against BENCH_baseline.json.

import (
	"io"
	"testing"

	"pdds/internal/core"
	"pdds/internal/ecn"
	"pdds/internal/experiments"
	"pdds/internal/link"
	"pdds/internal/model"
	"pdds/internal/sim"
	"pdds/internal/telemetry"
	"pdds/internal/traffic"
)

func benchScale() experiments.Scale { return experiments.Bench }

// benchExperiment times fn b.N times and reports the packets/sec metric
// from the experiments package's shared run counters (every driver routes
// its runs through them).
func benchExperiment(b *testing.B, fn func() error) {
	b.Helper()
	b.ReportAllocs()
	experiments.ResetCounters()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportPacketsPerSec(b, experiments.PacketCount())
}

// reportPacketsPerSec attaches the custom throughput metric: simulated
// packets completed per second of measured benchmark time.
func reportPacketsPerSec(b *testing.B, packets uint64) {
	b.Helper()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(packets)/s, "packets/sec")
	}
}

func BenchmarkFig1a(b *testing.B) {
	benchExperiment(b, func() error {
		points, err := experiments.Fig1(experiments.PaperSDPx2, benchScale())
		if err != nil {
			return err
		}
		return experiments.WriteFig1TSV(io.Discard, points, 2)
	})
}

func BenchmarkFig1b(b *testing.B) {
	benchExperiment(b, func() error {
		points, err := experiments.Fig1(experiments.PaperSDPx4, benchScale())
		if err != nil {
			return err
		}
		return experiments.WriteFig1TSV(io.Discard, points, 4)
	})
}

func BenchmarkFig2a(b *testing.B) {
	benchExperiment(b, func() error {
		points, err := experiments.Fig2(experiments.PaperSDPx2, benchScale())
		if err != nil {
			return err
		}
		return experiments.WriteFig2TSV(io.Discard, points, 2)
	})
}

func BenchmarkFig2b(b *testing.B) {
	benchExperiment(b, func() error {
		points, err := experiments.Fig2(experiments.PaperSDPx4, benchScale())
		if err != nil {
			return err
		}
		return experiments.WriteFig2TSV(io.Discard, points, 4)
	})
}

func BenchmarkFig3(b *testing.B) {
	benchExperiment(b, func() error {
		points, err := experiments.Fig3(experiments.PaperSDPx2, benchScale())
		if err != nil {
			return err
		}
		return experiments.WriteFig3TSV(io.Discard, points)
	})
}

func BenchmarkFig4BPRMicro(b *testing.B) {
	benchExperiment(b, func() error {
		res, err := experiments.Micro(core.KindBPR, benchScale())
		if err != nil {
			return err
		}
		return experiments.WriteMicroSeriesCSV(io.Discard, res)
	})
}

func BenchmarkFig5WTPMicro(b *testing.B) {
	benchExperiment(b, func() error {
		res, err := experiments.Micro(core.KindWTP, benchScale())
		if err != nil {
			return err
		}
		return experiments.WriteMicroSeriesCSV(io.Discard, res)
	})
}

func BenchmarkTable1(b *testing.B) {
	benchExperiment(b, func() error {
		cells, err := experiments.Table1(benchScale())
		if err != nil {
			return err
		}
		return experiments.WriteTable1TSV(io.Discard, cells)
	})
}

func BenchmarkFeasibility(b *testing.B) {
	benchExperiment(b, func() error {
		points, err := experiments.Feasibility(benchScale())
		if err != nil {
			return err
		}
		return experiments.WriteFeasibilityTSV(io.Discard, points)
	})
}

func BenchmarkAblation(b *testing.B) {
	benchExperiment(b, func() error {
		points, err := experiments.Ablation(benchScale())
		if err != nil {
			return err
		}
		return experiments.WriteAblationTSV(io.Discard, points)
	})
}

func BenchmarkLossExtension(b *testing.B) {
	benchExperiment(b, func() error {
		points, err := experiments.Loss(benchScale())
		if err != nil {
			return err
		}
		return experiments.WriteLossTSV(io.Discard, points)
	})
}

func BenchmarkModerateExtension(b *testing.B) {
	benchExperiment(b, func() error {
		points, err := experiments.Moderate(benchScale())
		if err != nil {
			return err
		}
		return experiments.WriteModerateTSV(io.Discard, points)
	})
}

func BenchmarkPathSched(b *testing.B) {
	benchExperiment(b, func() error {
		points, err := experiments.PathSched(benchScale())
		if err != nil {
			return err
		}
		return experiments.WritePathSchedTSV(io.Discard, points)
	})
}

func BenchmarkHPDGSweep(b *testing.B) {
	benchExperiment(b, func() error {
		points, err := experiments.HPDG(benchScale())
		if err != nil {
			return err
		}
		return experiments.WriteHPDGTSV(io.Discard, points)
	})
}

// BenchmarkScheduler measures raw enqueue+dequeue throughput of each
// discipline with four busy classes (one packet cycled per iteration).
func BenchmarkScheduler(b *testing.B) {
	for _, kind := range core.Kinds() {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			s, err := core.New(kind, []float64{1, 2, 4, 8}, link.PaperLinkRate)
			if err != nil {
				b.Fatal(err)
			}
			// Pre-fill so dequeues always find work.
			pkts := make([]*core.Packet, 64)
			for i := range pkts {
				pkts[i] = &core.Packet{ID: uint64(i), Class: i % 4, Size: 550}
			}
			for i, p := range pkts {
				s.Enqueue(p, float64(i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			now := 100.0
			for i := 0; i < b.N; i++ {
				now++
				p := s.Dequeue(now)
				p.Arrival = now
				s.Enqueue(p, now)
			}
			b.StopTimer()
			reportPacketsPerSec(b, uint64(b.N))
		})
	}
}

// BenchmarkEngineSchedule measures the event engine hot path on both
// queue backends: one AfterFunc+Step cycle per iteration against a warm
// pending set, exercising the pooled event nodes.
func BenchmarkEngineSchedule(b *testing.B) {
	nop := func(any) {}
	for _, backend := range []string{"heap", "calendar"} {
		backend := backend
		b.Run(backend, func(b *testing.B) {
			e := sim.NewEngine()
			if backend == "calendar" {
				e = sim.NewEngineCalendar()
			}
			// Warm pending set so Pop always reorders real work.
			for i := 0; i < 64; i++ {
				e.AfterFunc(float64(i)+0.5, nop, nil)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.AfterFunc(0.25, nop, nil)
				e.Step()
			}
			b.StopTimer()
			reportPacketsPerSec(b, uint64(b.N))
		})
	}
}

// BenchmarkPacketPool measures the packet free list cycle.
func BenchmarkPacketPool(b *testing.B) {
	pool := core.NewPacketPool()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := pool.Get()
		p.ID = uint64(i)
		p.Size = 550
		pool.Put(p)
	}
	b.StopTimer()
	reportPacketsPerSec(b, uint64(b.N))
}

// BenchmarkSingleLink measures end-to-end simulation throughput of the
// full source→scheduler→link pipeline.
func BenchmarkSingleLink(b *testing.B) {
	for _, kind := range []core.Kind{core.KindWTP, core.KindBPR, core.KindFCFS} {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			b.ReportAllocs()
			var departed uint64
			for i := 0; i < b.N; i++ {
				res, err := link.Run(link.RunConfig{
					Kind:    kind,
					SDP:     []float64{1, 2, 4, 8},
					Load:    traffic.PaperLoad(0.95),
					Horizon: 5e4,
					Warmup:  5e3,
					Seed:    uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Departed == 0 {
					b.Fatal("no packets")
				}
				departed += res.Departed
			}
			b.StopTimer()
			reportPacketsPerSec(b, departed)
		})
	}
}

// BenchmarkTelemetryOverhead compares the single-link hot path with and
// without a telemetry registry attached: identical seeded runs, so the
// "on"/"off" delta is purely the instrumentation cost (per-packet counter
// updates and histogram records; the registry itself is one allocation
// per run, not per packet).
func BenchmarkTelemetryOverhead(b *testing.B) {
	base := link.RunConfig{
		Kind:    core.KindWTP,
		SDP:     []float64{1, 2, 4, 8},
		Load:    traffic.PaperLoad(0.95),
		Horizon: 5e4,
		Warmup:  5e3,
	}
	for _, mode := range []string{"off", "on"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			var reg *telemetry.Registry
			if mode == "on" {
				reg = telemetry.NewWithSDP(base.SDP)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var departed uint64
			for i := 0; i < b.N; i++ {
				cfg := base
				cfg.Seed = uint64(i + 1)
				cfg.Telemetry = reg
				res, err := link.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Departed == 0 {
					b.Fatal("no packets")
				}
				departed += res.Departed
			}
			b.StopTimer()
			reportPacketsPerSec(b, departed)
		})
	}
}

// BenchmarkCodec measures header encode+decode round trips (one datagram
// per iteration).
func BenchmarkCodec(b *testing.B) {
	b.ReportAllocs()
	dst := make([]byte, 0, 64)
	var sink uint64
	for i := 0; i < b.N; i++ {
		dst = dst[:0]
		dst = EncodeDatagram(2, uint64(i), nil)
		_, seq, _, _, err := DecodeDatagram(dst)
		if err != nil {
			b.Fatal(err)
		}
		sink += seq
	}
	_ = sink
	b.StopTimer()
	reportPacketsPerSec(b, uint64(b.N))
}

// BenchmarkFluidBPRDrain measures the RK4 backlog integrator. The
// packets/sec metric counts drained class backlogs as packet-equivalents
// (the fluid model has no discrete packets).
func BenchmarkFluidBPRDrain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := core.NewFluidBPR([]float64{1, 2, 4, 8}, 100)
		for c := 0; c < 4; c++ {
			f.Add(c, 1000)
		}
		f.Drain(f.TimeToEmpty()*0.9, 64)
	}
	b.StopTimer()
	reportPacketsPerSec(b, uint64(b.N)*4)
}

// BenchmarkDCS measures the dynamic class selection simulation.
func BenchmarkDCS(b *testing.B) {
	b.ReportAllocs()
	var departed uint64
	for i := 0; i < b.N; i++ {
		rep, err := SimulateAdaptation(AdaptConfig{
			Users: []AdaptiveUser{
				{TargetPUnits: 3, LoadFraction: 0.03},
				{TargetPUnits: 300, LoadFraction: 0.03},
			},
			BackgroundLoad: 0.85,
			HorizonPUnits:  5000,
			Seed:           uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Users) != 2 {
			b.Fatal("bad report")
		}
		departed += rep.Packets
	}
	b.StopTimer()
	reportPacketsPerSec(b, departed)
}

// BenchmarkECNClosedLoop measures the AIMD/ECN closed-loop simulation.
func BenchmarkECNClosedLoop(b *testing.B) {
	b.ReportAllocs()
	var departed uint64
	for i := 0; i < b.N; i++ {
		res, err := ecn.Run(ecn.Config{
			SDP: []float64{1, 2, 4, 8},
			Sources: []ecn.SourceConfig{
				{Class: 0, InitialRate: 2, MinRate: 0.2},
				{Class: 3, InitialRate: 2, MinRate: 0.2},
			},
			Horizon: 50000,
			Warmup:  5000,
			Seed:    uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Utilization <= 0 {
			b.Fatal("no traffic")
		}
		departed += res.Departed
	}
	b.StopTimer()
	reportPacketsPerSec(b, departed)
}

// BenchmarkTraceReplay measures trace recording + FCFS replay throughput.
func BenchmarkTraceReplay(b *testing.B) {
	tr, err := traffic.Record(traffic.PaperLoad(0.95), link.PaperLinkRate, 50000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := model.FCFSMeanDelay(tr, link.PaperLinkRate); d <= 0 {
			b.Fatal("no delay measured")
		}
	}
	b.StopTimer()
	reportPacketsPerSec(b, uint64(b.N)*uint64(len(tr.Arrivals)))
}

// BenchmarkFeasibilityCheck measures a full Eq. (7) evaluation (14 FCFS
// sub-simulations on a recorded trace; packets/sec counts the aggregate
// trace replayed once per condition).
func BenchmarkFeasibilityCheck(b *testing.B) {
	tr, err := traffic.Record(traffic.PaperLoad(0.9), link.PaperLinkRate, 50000, 1)
	if err != nil {
		b.Fatal(err)
	}
	ddp := model.DDPsFromSDPs([]float64{1, 2, 4, 8})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := model.CheckDDPs(tr, link.PaperLinkRate, ddp)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Conditions) != 14 {
			b.Fatal("wrong condition count")
		}
	}
	b.StopTimer()
	reportPacketsPerSec(b, uint64(b.N)*14*uint64(len(tr.Arrivals)))
}
