package pdds

import (
	"math"
	"net"
	"testing"
	"time"
)

func TestSimulateLinkDefaults(t *testing.T) {
	rep, err := SimulateLink(LinkConfig{Horizon: 100000, Warmup: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scheduler != "WTP" {
		t.Fatalf("default scheduler = %q, want WTP", rep.Scheduler)
	}
	if len(rep.Classes) != 4 || len(rep.DelayRatios) != 3 {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	for c, cs := range rep.Classes {
		if cs.Packets == 0 || cs.MeanDelay <= 0 {
			t.Fatalf("class %d empty: %+v", c, cs)
		}
		if math.Abs(cs.MeanDelayPUnits-cs.MeanDelay/PUnit) > 1e-12 {
			t.Fatal("p-unit conversion wrong")
		}
	}
	for i, r := range rep.DelayRatios {
		if r <= 1 {
			t.Fatalf("ratio[%d] = %g, want > 1 at rho=0.95", i, r)
		}
	}
	if rep.Dropped != 0 {
		t.Fatal("lossless model dropped packets")
	}
}

func TestSimulateLinkKindsAndErrors(t *testing.T) {
	for _, kind := range SchedulerKinds() {
		rep, err := SimulateLink(LinkConfig{
			Scheduler: kind,
			Horizon:   20000,
			Warmup:    2000,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if rep.Utilization <= 0 {
			t.Fatalf("%s: zero utilization", kind)
		}
	}
	if _, err := SimulateLink(LinkConfig{Scheduler: "bogus", Horizon: 100}); err == nil {
		t.Fatal("bogus scheduler accepted")
	}
	if _, err := SimulateLink(LinkConfig{
		SDP:            []float64{1, 2},
		ClassFractions: []float64{1},
		Horizon:        100,
	}); err == nil {
		t.Fatal("mismatched fractions accepted")
	}
}

func TestSimulateLinkPoisson(t *testing.T) {
	rep, err := SimulateLink(LinkConfig{
		Poisson: true,
		Horizon: 50000,
		Warmup:  5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Classes[0].MeanDelay <= rep.Classes[3].MeanDelay {
		t.Fatal("Poisson run lost differentiation")
	}
}

func TestSimulatePathSmall(t *testing.T) {
	rep, err := SimulatePath(PathConfig{
		Hops:        2,
		Utilization: 0.85,
		Experiments: 4,
		WarmupSec:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RD <= 1 {
		t.Fatalf("RD = %g, want > 1", rep.RD)
	}
	if len(rep.MeanE2E) != 4 {
		t.Fatalf("MeanE2E = %v", rep.MeanE2E)
	}
}

func TestCheckFeasibilityDefaults(t *testing.T) {
	res, err := CheckFeasibility(FeasibilityConfig{Horizon: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("paper default operating point infeasible: slack %g", res.WorstSlack)
	}
	if len(res.PredictedDelays) != 4 || res.AggregateDelay <= 0 {
		t.Fatalf("result shape wrong: %+v", res)
	}
	// Predicted delays must be proportional to 1/SDP: d1/d4 = 8.
	if r := res.PredictedDelays[0] / res.PredictedDelays[3]; math.Abs(r-8) > 1e-9 {
		t.Fatalf("predicted d1/d4 = %g, want 8", r)
	}
}

func TestForwarderFacade(t *testing.T) {
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	fwd, err := StartForwarder("127.0.0.1:0", recv.LocalAddr().String(), WTP, nil, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	send, err := net.Dial("udp", fwd.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	dg := EncodeDatagram(2, 7, []byte("hello"))
	if _, err := send.Write(dg); err != nil {
		t.Fatal(err)
	}
	recv.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 2048)
	n, _, err := recv.ReadFromUDP(buf)
	if err != nil {
		t.Fatal(err)
	}
	class, seq, sentAt, payload, err := DecodeDatagram(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if class != 2 || seq != 7 || string(payload) != "hello" {
		t.Fatalf("decoded class=%d seq=%d payload=%q", class, seq, payload)
	}
	if time.Since(sentAt) > time.Minute || time.Since(sentAt) < 0 {
		t.Fatalf("timestamp implausible: %v", sentAt)
	}
	if st := fwd.Stats(); st.Forwarded != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, _, _, _, err := DecodeDatagram([]byte{1}); err == nil {
		t.Fatal("short datagram accepted")
	}
}

// The facade's adaptation surface: Retune swaps live parameters, the
// counters report it, Adapt wires the controller in, and both refuse a
// non-retunable scheduler.
func TestForwarderFacadeAdapt(t *testing.T) {
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	fwd, err := StartForwarderWithConfig(ForwarderConfig{
		Listen:  "127.0.0.1:0",
		Forward: recv.LocalAddr().String(),
		SDP:     []float64{1, 4},
		RateBps: 1e6,
		Adapt:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	if err := fwd.Retune([]float64{4, 1}); err == nil {
		t.Fatal("non-monotone SDP vector accepted")
	}
	if err := fwd.Retune([]float64{1, 8}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		cs := fwd.ControlStats()
		if cs.Applied == 1 {
			if len(cs.Params) != 2 || cs.Params[1] != 8 {
				t.Fatalf("installed params = %v, want [1 8]", cs.Params)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retune never installed: %+v", cs)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if _, err := StartForwarderWithConfig(ForwarderConfig{
		Listen:    "127.0.0.1:0",
		Forward:   recv.LocalAddr().String(),
		Scheduler: FCFS,
		RateBps:   1e6,
		Adapt:     true,
	}); err == nil {
		t.Fatal("Adapt on FCFS accepted")
	}
}

func TestStartForwarderError(t *testing.T) {
	if _, err := StartForwarder("bad addr", "127.0.0.1:9", WTP, nil, 1e6); err == nil {
		t.Fatal("bad listen addr accepted")
	}
}

func TestSimulatePathSchedulerOption(t *testing.T) {
	rep, err := SimulatePath(PathConfig{
		Hops:        2,
		Scheduler:   BPR,
		Utilization: 0.9,
		Experiments: 3,
		WarmupSec:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RD <= 1 {
		t.Fatalf("BPR path RD = %g", rep.RD)
	}
	if _, err := SimulatePath(PathConfig{
		Hops:        1,
		Scheduler:   "bogus",
		Experiments: 1,
		WarmupSec:   1,
	}); err == nil {
		t.Fatal("bogus path scheduler accepted")
	}
}
