// Package pdds is a Go implementation of Proportional Differentiated
// Services: the relative-differentiation model and the packet schedulers of
// Dovrolis, Stiliadis and Ramanathan, "Proportional Differentiated
// Services: Delay Differentiation and Packet Scheduling" (SIGCOMM 1999).
//
// The package offers five entry points:
//
//   - SimulateLink runs the paper's single-link model (Study A): N classes
//     of bursty Pareto traffic through a WTP, BPR or baseline scheduler,
//     returning per-class queueing-delay statistics and the
//     successive-class delay ratios the proportional model controls.
//
//   - SimulatePath runs the multi-hop model (Study B): per-class user
//     flows across K congested WTP hops with cross-traffic, returning the
//     end-to-end differentiation metrics of Table 1.
//
//   - CheckFeasibility evaluates the Coffman–Mitrani conditions (Eq. 7)
//     to decide whether a set of delay differentiation parameters is
//     achievable at an operating point, before any scheduler is deployed.
//
//   - PlanClasses answers the operator question of §7: derive the
//     scheduler parameters from a per-class delay requirement profile and
//     report whether the plan is achievable.
//
//   - SimulateAdaptation runs the end-system adaptation scenario of §1:
//     users with absolute delay targets dynamically selecting classes.
//
// StartForwarder additionally runs the per-hop behaviour on live UDP
// sockets: a class-marking forwarder whose egress is scheduled by WTP.
//
// NewTelemetry provides live observability for all of the above: lock-free
// per-class counters and delay histograms, streaming adjacent-class delay
// ratios judged against the DDP targets, and an HTTP /metrics endpoint.
// Attach one via LinkConfig.Telemetry, PathConfig.Telemetry or
// ForwarderConfig.MetricsAddr.
//
// All simulation randomness is seeded: equal configurations produce
// bit-identical results.
package pdds

import (
	"fmt"

	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/model"
	"pdds/internal/network"
	"pdds/internal/stats"
	"pdds/internal/traffic"
)

// SchedulerKind names a queueing discipline.
type SchedulerKind string

// Supported scheduler kinds.
const (
	WTP      SchedulerKind = "wtp"      // Waiting-Time Priority (§4.2)
	BPR      SchedulerKind = "bpr"      // Backlog-Proportional Rate (§4.1)
	FCFS     SchedulerKind = "fcfs"     // shared FIFO reference
	Strict   SchedulerKind = "strict"   // strict prioritization
	WFQ      SchedulerKind = "wfq"      // static-weight fair queueing
	Additive SchedulerKind = "additive" // additive differentiation (Eq. 3)
)

// SchedulerKinds lists every supported kind.
func SchedulerKinds() []SchedulerKind {
	out := make([]SchedulerKind, 0, len(core.Kinds()))
	for _, k := range core.Kinds() {
		out = append(out, SchedulerKind(k))
	}
	return out
}

// PUnit is the paper's packet-time unit for Study A: the mean packet
// transmission time, 11.2 simulation time units.
const PUnit = link.PUnit

// LinkConfig configures SimulateLink. Zero values take the paper's
// defaults where one exists.
type LinkConfig struct {
	// Scheduler is the discipline (default WTP).
	Scheduler SchedulerKind
	// SDP are the scheduler differentiation parameters, one per class,
	// nondecreasing (default 1,2,4,8).
	SDP []float64
	// Utilization is the offered load ρ in (0,1] (default 0.95).
	Utilization float64
	// ClassFractions splits the load across classes, summing to 1
	// (default 0.40,0.30,0.20,0.10). Length must match SDP.
	ClassFractions []float64
	// Poisson switches interarrivals from Pareto(Alpha) to exponential.
	Poisson bool
	// Alpha is the Pareto shape (default 1.9).
	Alpha float64
	// Horizon and Warmup are in time units (defaults 1e6 and 5e4).
	Horizon, Warmup float64
	// Seed drives all randomness (default 1).
	Seed uint64
	// Telemetry, if set, observes the link live: per-class counters,
	// delay histograms and streaming DDP-ratio tracking, including
	// during the run (e.g. from the HTTP endpoint; see NewTelemetry).
	// Unlike the post-run LinkReport, telemetry sees warm-up traffic
	// too.
	Telemetry *Telemetry
}

func (c LinkConfig) withDefaults() LinkConfig {
	if c.Scheduler == "" {
		c.Scheduler = WTP
	}
	if len(c.SDP) == 0 {
		c.SDP = []float64{1, 2, 4, 8}
	}
	if c.Utilization == 0 {
		c.Utilization = 0.95
	}
	if len(c.ClassFractions) == 0 && len(c.SDP) == 4 {
		c.ClassFractions = []float64{0.40, 0.30, 0.20, 0.10}
	}
	if c.Alpha == 0 {
		c.Alpha = 1.9
	}
	if c.Horizon == 0 {
		c.Horizon = 1e6
	}
	if c.Warmup == 0 && c.Horizon > 1e5 {
		c.Warmup = 5e4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ClassStat summarizes one class's queueing delays over a run.
type ClassStat struct {
	// Packets is the number of departures measured (post warm-up).
	Packets uint64
	// MeanDelay and StdDelay are in simulation time units.
	MeanDelay, StdDelay float64
	// P50Delay and P95Delay are the median and 95th-percentile delays
	// in simulation time units (0 when the class saw no packets).
	P50Delay, P95Delay float64
	// MeanDelayPUnits is MeanDelay expressed in mean packet
	// transmission times.
	MeanDelayPUnits float64
}

// LinkReport is SimulateLink's result.
type LinkReport struct {
	// Scheduler echoes the discipline that ran.
	Scheduler string
	// Utilization is the realized link utilization.
	Utilization float64
	// Classes holds per-class statistics, index 0 = lowest class.
	Classes []ClassStat
	// DelayRatios[i] is MeanDelay(class i)/MeanDelay(class i+1) — under
	// the proportional model with WTP in heavy load this tends to
	// SDP[i+1]/SDP[i].
	DelayRatios []float64
	// Dropped counts buffer losses (zero in the default lossless
	// model).
	Dropped uint64
}

// SimulateLink runs the single-link model of Study A.
func SimulateLink(cfg LinkConfig) (*LinkReport, error) {
	cfg = cfg.withDefaults()
	if len(cfg.ClassFractions) != len(cfg.SDP) {
		return nil, fmt.Errorf("pdds: %d class fractions for %d SDPs", len(cfg.ClassFractions), len(cfg.SDP))
	}
	samples := make([]stats.Sample, len(cfg.SDP))
	warmup := cfg.Warmup
	res, err := link.Run(link.RunConfig{
		Kind: core.Kind(cfg.Scheduler),
		SDP:  cfg.SDP,
		Load: traffic.LoadSpec{
			Rho:       cfg.Utilization,
			Fractions: cfg.ClassFractions,
			Sizes:     traffic.PaperSizes(),
			Alpha:     cfg.Alpha,
			Poisson:   cfg.Poisson,
		},
		Horizon:   cfg.Horizon,
		Warmup:    cfg.Warmup,
		Seed:      cfg.Seed,
		Telemetry: cfg.Telemetry.registry(),
		Observers: []func(*core.Packet){func(p *core.Packet) {
			if p.Departure >= warmup {
				samples[p.Class].Add(p.Wait())
			}
		}},
	})
	if err != nil {
		return nil, err
	}
	rep := &LinkReport{
		Scheduler:   res.SchedulerName,
		Utilization: res.Utilization,
		DelayRatios: res.Delays.SuccessiveRatios(),
		Dropped:     res.Dropped,
	}
	for c := 0; c < len(cfg.SDP); c++ {
		w := res.Delays.Class(c)
		cs := ClassStat{
			Packets:         w.Count(),
			MeanDelay:       w.Mean(),
			StdDelay:        w.Std(),
			MeanDelayPUnits: w.Mean() / link.PUnit,
		}
		if samples[c].Len() > 0 {
			cs.P50Delay = samples[c].Quantile(0.50)
			cs.P95Delay = samples[c].Quantile(0.95)
		}
		rep.Classes = append(rep.Classes, cs)
	}
	return rep, nil
}

// PathConfig configures SimulatePath (Study B). Zero values take the
// paper's defaults.
type PathConfig struct {
	// Hops is the number of congested links K (default 4).
	Hops int
	// Utilization is the per-link load ρ (default 0.95).
	Utilization float64
	// SDP are the per-hop scheduler parameters (default 1,2,4,8).
	SDP []float64
	// Scheduler selects the per-hop discipline (default WTP, the
	// paper's choice "since it performs better than BPR").
	Scheduler SchedulerKind
	// FlowPackets (F, default 10) and FlowKbps (R_u, default 50)
	// describe the user flows.
	FlowPackets int
	FlowKbps    float64
	// Experiments is the number of per-second user experiments M
	// (default 100).
	Experiments int
	// WarmupSec warms the path before the first experiment
	// (default 100).
	WarmupSec float64
	// Seed drives all randomness (default 1).
	Seed uint64
	// Telemetry, if set, observes every hop live, aggregated across the
	// path (see NewTelemetry).
	Telemetry *Telemetry
}

// PathReport is SimulatePath's result.
type PathReport struct {
	// RD is the end-to-end delay ratio between successive classes
	// averaged over class pairs, experiments and percentiles — 2.0
	// under ideal proportional differentiation with the default SDPs.
	RD float64
	// Inconsistent counts percentile comparisons where a higher class
	// did worse than a lower one (the paper's headline: zero).
	Inconsistent int
	// InconsistentExperiments counts experiments with at least one
	// inconsistency.
	InconsistentExperiments int
	// MeanE2E is the mean end-to-end queueing delay per class, seconds.
	MeanE2E []float64
	// Utilization is the realized per-link utilization (average).
	Utilization float64
}

// SimulatePath runs the multi-hop model of Study B.
func SimulatePath(cfg PathConfig) (*PathReport, error) {
	if cfg.Hops == 0 {
		cfg.Hops = 4
	}
	if cfg.Utilization == 0 {
		cfg.Utilization = 0.95
	}
	if len(cfg.SDP) == 0 {
		cfg.SDP = []float64{1, 2, 4, 8}
	}
	if cfg.FlowPackets == 0 {
		cfg.FlowPackets = 10
	}
	if cfg.FlowKbps == 0 {
		cfg.FlowKbps = 50
	}
	if cfg.Experiments == 0 {
		cfg.Experiments = 100
	}
	if cfg.WarmupSec == 0 {
		cfg.WarmupSec = 100
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	res, err := network.Run(network.Config{
		Hops:        cfg.Hops,
		Rho:         cfg.Utilization,
		SDP:         cfg.SDP,
		Scheduler:   core.Kind(cfg.Scheduler),
		FlowPackets: cfg.FlowPackets,
		FlowKbps:    cfg.FlowKbps,
		Experiments: cfg.Experiments,
		WarmupSec:   cfg.WarmupSec,
		Seed:        cfg.Seed,
		Telemetry:   cfg.Telemetry.registry(),
	})
	if err != nil {
		return nil, err
	}
	return &PathReport{
		RD:                      res.RD,
		Inconsistent:            res.Inconsistent,
		InconsistentExperiments: res.InconsistentExperiments,
		MeanE2E:                 res.MeanE2E,
		Utilization:             res.Utilization,
	}, nil
}

// FeasibilityConfig configures CheckFeasibility.
type FeasibilityConfig struct {
	// SDP are the scheduler parameters whose induced DDPs (inverse
	// ratios) are checked (default 1,2,4,8).
	SDP []float64
	// Utilization and ClassFractions define the operating point
	// (defaults 0.95 and 0.40/0.30/0.20/0.10).
	Utilization    float64
	ClassFractions []float64
	// Horizon is the trace length used for the FCFS sub-simulations
	// (default 5e5 time units).
	Horizon float64
	// Seed drives the trace (default 1).
	Seed uint64
}

// FeasibilityResult is CheckFeasibility's verdict.
type FeasibilityResult struct {
	// Feasible reports whether some work-conserving scheduler could
	// realize the proportional model at this operating point.
	Feasible bool
	// WorstSlack is the tightest Eq. (7) inequality's relative margin
	// (negative = violated).
	WorstSlack float64
	// PredictedDelays are the Eq. (6) per-class average delays, in time
	// units.
	PredictedDelays []float64
	// AggregateDelay is the measured FCFS aggregate delay d̄(λ).
	AggregateDelay float64
}

// CheckFeasibility records a trace at the operating point and evaluates
// the Eq. (7) feasibility of proportional differentiation with the given
// SDPs.
func CheckFeasibility(cfg FeasibilityConfig) (*FeasibilityResult, error) {
	if len(cfg.SDP) == 0 {
		cfg.SDP = []float64{1, 2, 4, 8}
	}
	if cfg.Utilization == 0 {
		cfg.Utilization = 0.95
	}
	if len(cfg.ClassFractions) == 0 && len(cfg.SDP) == 4 {
		cfg.ClassFractions = []float64{0.40, 0.30, 0.20, 0.10}
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 5e5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	tr, err := traffic.Record(traffic.LoadSpec{
		Rho:       cfg.Utilization,
		Fractions: cfg.ClassFractions,
		Sizes:     traffic.PaperSizes(),
		Alpha:     1.9,
	}, link.PaperLinkRate, cfg.Horizon, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rep, err := model.CheckDDPs(tr, link.PaperLinkRate, model.DDPsFromSDPs(cfg.SDP))
	if err != nil {
		return nil, err
	}
	return &FeasibilityResult{
		Feasible:        rep.Feasible(),
		WorstSlack:      rep.WorstSlack(),
		PredictedDelays: rep.Delays,
		AggregateDelay:  rep.AggregateDelay,
	}, nil
}
