package pdds_test

import (
	"fmt"
	"log"

	"pdds"
)

// The basic use of the library: run the paper's single-link model and read
// the controlled delay ratios.
func ExampleSimulateLink() {
	rep, err := pdds.SimulateLink(pdds.LinkConfig{
		Scheduler:   pdds.WTP,
		SDP:         []float64{1, 2, 4, 8},
		Utilization: 0.95,
		Horizon:     200_000,
		Warmup:      20_000,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduler: %s\n", rep.Scheduler)
	fmt.Printf("classes measured: %d\n", len(rep.Classes))
	// Delay ratios hover near the inverse SDP ratio 2 under heavy load.
	for i, r := range rep.DelayRatios {
		ok := r > 1.5 && r < 2.5
		fmt.Printf("d%d/d%d near 2: %v\n", i+1, i+2, ok)
	}
	// Output:
	// scheduler: WTP
	// classes measured: 4
	// d1/d2 near 2: true
	// d2/d3 near 2: true
	// d3/d4 near 2: true
}

// Checking whether a differentiation plan is achievable before deploying
// it (Eq. 6 + Eq. 7).
func ExampleCheckFeasibility() {
	res, err := pdds.CheckFeasibility(pdds.FeasibilityConfig{
		SDP:         []float64{1, 2, 4, 8},
		Utilization: 0.90,
		Horizon:     100_000,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feasible: %v\n", res.Feasible)
	fmt.Printf("predicted delays ordered: %v\n",
		res.PredictedDelays[0] > res.PredictedDelays[1] &&
			res.PredictedDelays[1] > res.PredictedDelays[2] &&
			res.PredictedDelays[2] > res.PredictedDelays[3])
	// Output:
	// feasible: true
	// predicted delays ordered: true
}

// Deriving scheduler parameters from a population requirement profile
// (the §7 operator question).
func ExamplePlanClasses() {
	plan, err := pdds.PlanClasses(pdds.PlanConfig{
		TargetsPUnits: []float64{400, 200, 100, 50},
		Utilization:   0.90,
		Horizon:       100_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SDP: %v\n", plan.SDP)
	fmt.Printf("workable: %v\n", plan.Workable)
	// Output:
	// SDP: [1 2 4 8]
	// workable: true
}
