package pdds

import (
	"net"
	"strings"
	"testing"
	"time"
)

const testClassConfig = `
class bulk
  ddp 4
  default
class interactive
  ddp 1
  match dscp 46
`

func TestClassConfigFacade(t *testing.T) {
	cfg, err := ParseClassConfig(strings.NewReader(testClassConfig))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumClasses() != 2 {
		t.Fatalf("NumClasses = %d", cfg.NumClasses())
	}
	if names := cfg.Names(); len(names) != 2 || names[0] != "bulk" || names[1] != "interactive" {
		t.Fatalf("Names = %v", names)
	}
	if ddps := cfg.DDPs(); len(ddps) != 2 || ddps[0] != 4 || ddps[1] != 1 {
		t.Fatalf("DDPs = %v", ddps)
	}
	if sdps := cfg.SDPs(); len(sdps) != 2 || sdps[0] != 1 || sdps[1] != 4 {
		t.Fatalf("SDPs = %v", sdps)
	}
	if cfg.DefaultClass() != 0 {
		t.Fatalf("DefaultClass = %d", cfg.DefaultClass())
	}

	if _, err := ParseClassConfig(strings.NewReader("class x\n")); err == nil {
		t.Fatal("config without ddp accepted")
	}
	if _, err := LoadClassConfig("testdata/no-such-classes.conf"); err == nil {
		t.Fatal("missing config file accepted")
	}
}

// TestForwarderWithClasses drives the classifying facade end to end:
// SDPs derive from the config's DDPs, untagged datagrams land in the
// default class, DSCP-marked ones in their filtered class, and the live
// class snapshots carry the configured names.
func TestForwarderWithClasses(t *testing.T) {
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	cfg, err := ParseClassConfig(strings.NewReader(testClassConfig))
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := StartForwarderWithConfig(ForwarderConfig{
		Listen:  "127.0.0.1:0",
		Forward: recv.LocalAddr().String(),
		RateBps: 10e6,
		Classes: cfg,
		FlowTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	// Distinct sockets per stream: the flow table memoizes per 5-tuple.
	untagged, err := net.Dial("udp", fwd.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer untagged.Close()
	marked, err := net.Dial("udp", fwd.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer marked.Close()

	const n = 10
	for i := 0; i < n; i++ {
		if _, err := untagged.Write(EncodeDatagram(ClassUnspecified, uint64(i), nil)); err != nil {
			t.Fatal(err)
		}
		if _, err := marked.Write(EncodeDatagram(46, uint64(i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := fwd.Stats()
		if st.Forwarded >= 2*n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("forwarder never drained: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := fwd.Stats(); st.BadClass != 0 || st.BadHeader != 0 {
		t.Fatalf("classified run: %+v", st)
	}

	classes := fwd.ClassStats()
	if len(classes) != 2 || classes[0].Name != "bulk" || classes[1].Name != "interactive" {
		t.Fatalf("class stats: %+v", classes)
	}
	for _, c := range classes {
		if c.Arrivals != n || c.Departures != n {
			t.Errorf("class %s: %d arrivals %d departures, want %d each",
				c.Name, c.Arrivals, c.Departures, n)
		}
	}
	if ratios := fwd.DelayRatios(); len(ratios) != 1 {
		t.Fatalf("delay ratios: %v", ratios)
	}
}

// TestForwarderWithoutClassifierCountsBadClass: with no class config, an
// untagged datagram has no resolution path and lands in BadClass.
func TestForwarderWithoutClassifierCountsBadClass(t *testing.T) {
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	fwd, err := StartForwarder("127.0.0.1:0", recv.LocalAddr().String(), WTP, nil, 10e6)
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	send, err := net.Dial("udp", fwd.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	if _, err := send.Write(EncodeDatagram(ClassUnspecified, 0, nil)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for fwd.Stats().BadClass == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("BadClass never counted: %+v", fwd.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
