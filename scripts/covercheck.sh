#!/bin/sh
# covercheck.sh: run `go test -cover ./...` and fail if any package named
# in COVERAGE.md reports statement coverage below its floor. Invoked by
# `make cover`; run it from the repository root.
set -u

out=$(${GO:-go} test -cover ./...) || { printf '%s\n' "$out"; exit 1; }
printf '%s\n' "$out"

printf '%s\n' "$out" | awk '
	# First input: the floor table in COVERAGE.md.
	NR == FNR {
		if ($1 == "|" && $2 ~ /^pdds/) floor[$2] = $4 + 0
		next
	}
	# Second input: go test -cover output lines like
	#   ok  pdds/internal/core  0.08s  coverage: 94.2% of statements
	$1 == "ok" {
		for (i = 1; i <= NF; i++)
			if ($i == "coverage:") { pct = $(i + 1); sub(/%/, "", pct); cov[$2] = pct + 0 }
	}
	END {
		bad = 0
		for (p in floor) {
			if (!(p in cov)) {
				printf "covercheck: no coverage reported for %s (package removed? update COVERAGE.md)\n", p
				bad = 1
			} else if (cov[p] < floor[p]) {
				printf "covercheck: %s at %.1f%% is below its %d%% floor (see COVERAGE.md)\n", p, cov[p], floor[p]
				bad = 1
			}
		}
		if (!bad) print "covercheck: all floors met"
		exit bad
	}
' COVERAGE.md -
