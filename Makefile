# Convenience targets; everything is plain `go` underneath.

GO ?= go

# Benchmark iteration budget for bench/bench-save/bench-cmp; raise for
# lower-variance numbers (e.g. BENCHTIME=5s).
BENCHTIME ?= 1s

.PHONY: all build vet test test-short race bench bench-save bench-cmp bench-fwd-save bench-fwd-cmp cover conformance certify control golden-update experiments experiments-quick fuzz fuzz-smoke soak soak-sharded stress stress-full clean

all: build vet test race conformance certify control fuzz-smoke soak stress

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt: unformatted files:"; echo "$$unformatted"; exit 1; fi

# -shuffle=on randomizes test (and subtest) execution order so hidden
# inter-test state dependencies surface; the seed is printed on failure
# and reproducible with -shuffle=<seed>.
test:
	$(GO) test -shuffle=on ./...

# The repeated ForEach stress run exercises the parallel replication
# runner's work-stealing dispatch under the race detector before the
# whole-tree pass (which covers ./internal/experiments once more). The
# repeated forwarder run stresses the UDP data plane's receive/transmit/
# close interleavings — TestForwarderSharded* cover shard counts 1, 2 and
# 8, so conservation under mid-flight close, the SPSC rings, and the
# deadline merge all run under the race detector at every shard count.
race:
	$(GO) test -race -run TestForEachRaceStress -count=5 ./internal/experiments/
	$(GO) test -race -run 'TestForwarder|TestIngress|TestRing' -count=3 ./internal/netio/
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) ./...

# Record the benchmark baseline artifact (ns/op, allocs/op, packets/sec
# per benchmark). Commit BENCH_baseline.json so perf changes show up in
# review via bench-cmp.
bench-save:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) ./... | $(GO) run ./cmd/pdbench -save BENCH_baseline.json

# Compare the current tree against the committed baseline.
bench-cmp:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) ./... | $(GO) run ./cmd/pdbench -baseline BENCH_baseline.json

# Forwarder data-plane throughput baseline (ingress batch processing,
# SPSC ring transfer, end-to-end sharded loopback packets/sec). Kept as
# its own artifact so the forwarder's throughput trajectory is recorded
# per change without whole-tree benchmark noise.
FWD_BENCH = BenchmarkIngressProcessBatch|BenchmarkForwarderThroughput|BenchmarkRingTransfer

bench-fwd-save:
	$(GO) test -bench '$(FWD_BENCH)' -benchmem -benchtime=$(BENCHTIME) ./internal/netio/ | $(GO) run ./cmd/pdbench -save BENCH_forwarder.json

bench-fwd-cmp:
	$(GO) test -bench '$(FWD_BENCH)' -benchmem -benchtime=$(BENCHTIME) ./internal/netio/ | $(GO) run ./cmd/pdbench -baseline BENCH_forwarder.json

# Per-package coverage with enforced floors: fails if any package in
# COVERAGE.md's table reports statement coverage below its floor.
cover:
	GO="$(GO)" ./scripts/covercheck.sh

# Regenerate every paper figure/table at full fidelity (~15 min single core).
experiments:
	$(GO) run ./cmd/pdexp -exp all -scale full -out results/

experiments-quick:
	$(GO) run ./cmd/pdexp -exp all -scale quick -out results/

# Scheduler invariant oracles, differential tests and golden traces
# (see TESTING.md). Verbose so each scheduler/scenario pair is visible.
conformance:
	$(GO) test -v -run 'TestConformance|TestGolden|TestHeapCalendar|TestBPRTracks' ./internal/conformance/

# Analytic delay-bound certification (the third verification axis, see
# TESTING.md): every seeded scenario's realized worst-case per-class
# delay under DRR/WFQ/IWRR must stay below its network-calculus bound.
# Verbose so the per-class bound/observed gaps are visible.
certify:
	$(GO) test -v -run 'TestAnalyticBounds|TestUnderstatedBurst' ./internal/conformance/

# Closed-loop controller conformance (see TESTING.md): the convergence
# suite (controller strictly beats uncontrolled under every chaos
# timeline, an inverted gain strictly hurts, and the settled loop holds
# every adjacent ratio within 10% of its DDP target), the chaos-harness
# control invariants (in-band runs byte-identical, live ramp clean), and
# the forwarder's staged retune seam. Verbose so the per-plan off/on
# tail errors are visible.
control:
	$(GO) test -v -run 'TestController|TestInverted|TestQuantum|TestControl|TestSegmentWarmup' ./internal/control/ ./internal/chaos/
	$(GO) test -v -run 'TestForwarderRetune|TestForwarderControl' ./internal/netio/

# Regenerate the committed golden traces after an intentional behaviour
# change. Review the diff before committing.
golden-update:
	$(GO) test ./internal/conformance/ -run TestGoldenTraces -update

# Brief fuzzing passes over the wire/file parsers.
fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/netio/
	$(GO) test -fuzz FuzzTraceCSV -fuzztime 30s ./internal/traffic/
	$(GO) test -fuzz FuzzParseFloats -fuzztime 30s ./internal/cliutil/
	$(GO) test -fuzz FuzzClassConfig -fuzztime 30s ./internal/classify/
	$(GO) test -fuzz FuzzCurveOps -fuzztime 30s ./internal/netcalc/
	$(GO) test -fuzz FuzzRetune -fuzztime 30s ./internal/core/

# Short fuzzing passes over the scheduler data structures: the fifo ring,
# the WTP selection scan, the live retune seam, and the calendar queue vs
# the binary heap.
fuzz-smoke:
	$(GO) test -fuzz FuzzDeque -fuzztime 10s ./internal/core/
	$(GO) test -fuzz FuzzWTPScan -fuzztime 10s ./internal/core/
	$(GO) test -fuzz FuzzRetune -fuzztime 10s ./internal/core/
	$(GO) test -fuzz FuzzCalendarQueue -fuzztime 10s ./internal/sim/
	$(GO) test -fuzz FuzzTraceCSV -fuzztime 10s ./internal/traffic/
	$(GO) test -fuzz FuzzClassConfig -fuzztime 10s ./internal/classify/
	$(GO) test -fuzz FuzzCurveOps -fuzztime 10s ./internal/netcalc/

# Short loopback soak: saturate a live forwarder via cmd/pdload and fail
# unless the achieved egress rate is within ±2% of the configured rate
# with exact packet conservation after the drain.
soak:
	$(GO) run ./cmd/pdload -duration 2s -rate 4e6

# Sharded soak: same acceptance gates (rate accuracy, conservation) with
# the ingress split across 4 SO_REUSEPORT shards and deadline-merged at
# egress; the reported packets/sec is the scaling headline on multi-core
# hosts.
soak-sharded:
	$(GO) run ./cmd/pdload -duration 2s -rate 4e6 -shards 4

# Chaos/fault stress matrix (cmd/pdstress): the scenario catalog across
# {WTP,BPR,FCFS} plus the live-forwarder egress fault plans, judged on
# conservation, pool leaks, telemetry monotonicity and PDD ratio windows.
# `stress` is the CI-sized run; `stress-full` drives ~13M packets.
stress:
	$(GO) run ./cmd/pdstress -scale quick -net

stress-full:
	$(GO) run ./cmd/pdstress -scale full -net

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
