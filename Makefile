# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race bench cover experiments experiments-quick fuzz clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt: unformatted files:"; echo "$$unformatted"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./...

# Regenerate every paper figure/table at full fidelity (~15 min single core).
experiments:
	$(GO) run ./cmd/pdexp -exp all -scale full -out results/

experiments-quick:
	$(GO) run ./cmd/pdexp -exp all -scale quick -out results/

# Brief fuzzing passes over the two wire/file parsers.
fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/netio/
	$(GO) test -fuzz FuzzReadTraceCSV -fuzztime 30s ./internal/traffic/
	$(GO) test -fuzz FuzzParseFloats -fuzztime 30s ./internal/cliutil/

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
