// Quickstart: run the paper's single-link model with the Waiting-Time
// Priority scheduler and observe proportional delay differentiation — the
// ratio of average delays between successive classes pinned near 2 under
// heavy load, independent of each class's actual load.
package main

import (
	"fmt"
	"log"

	"pdds"
)

func main() {
	rep, err := pdds.SimulateLink(pdds.LinkConfig{
		Scheduler:   pdds.WTP,
		SDP:         []float64{1, 2, 4, 8}, // class i delays target 2x class i+1
		Utilization: 0.95,
		Horizon:     500_000, // time units; the mean packet takes 11.2
		Warmup:      50_000,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheduler %s at %.0f%% utilization\n", rep.Scheduler, rep.Utilization*100)
	for i, cs := range rep.Classes {
		fmt.Printf("  class %d: %6d packets, mean queueing delay %7.1f (%.1f packet-times)\n",
			i+1, cs.Packets, cs.MeanDelay, cs.MeanDelayPUnits)
	}
	fmt.Println("successive-class delay ratios (target 2.00):")
	for i, r := range rep.DelayRatios {
		fmt.Printf("  d%d/d%d = %.2f\n", i+1, i+2, r)
	}
}
