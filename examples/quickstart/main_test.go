package main

import (
	"strings"
	"testing"

	"pdds/internal/testutil"
)

// TestMain runs the example end to end: it must complete and print the
// delay-ratio report.
func TestMainRuns(t *testing.T) {
	out := testutil.CaptureStdout(t, main)
	for _, want := range []string{"scheduler", "successive-class delay ratios", "d1/d2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
