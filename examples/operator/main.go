// Operator: the network-design question of §7 — given a profile of user
// delay requirements, which scheduler parameters should a link run, and is
// the plan even achievable at the expected load? This example derives the
// SDPs from a requirement ladder, checks Eq. (7) feasibility, finds the
// highest sustainable utilization, then closes the loop: a dynamic-class-
// selection population confirms users actually meet those targets on the
// provisioned link.
package main

import (
	"fmt"
	"log"

	"pdds"
)

func main() {
	// Requirements: class 4 is premium interactive (≤20 packet-times),
	// class 1 is bulk (≤160 packet-times).
	targets := []float64{160, 80, 40, 20}

	fmt.Println("provisioning question: four classes with per-hop delay budgets")
	fmt.Printf("  targets (p-units): %v\n\n", targets)
	for _, rho := range []float64{0.85, 0.90, 0.95} {
		plan, err := pdds.PlanClasses(pdds.PlanConfig{
			TargetsPUnits: targets,
			Utilization:   rho,
			Horizon:       200000,
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "NOT WORKABLE"
		if plan.Workable {
			verdict = "workable"
		}
		fmt.Printf("rho=%.2f: predicted delays %s, scale %.2f, feasible=%v -> %s\n",
			rho, fmtSlice(plan.PredictedPUnits), plan.Scale, plan.Feasible, verdict)
	}

	fmt.Println("\nclosing the loop: adaptive users on a busier 95% link")
	rep, err := pdds.SimulateAdaptation(pdds.AdaptConfig{
		Users: []pdds.AdaptiveUser{
			{TargetPUnits: 20, LoadFraction: 0.02},
			{TargetPUnits: 20, LoadFraction: 0.02},
			{TargetPUnits: 80, LoadFraction: 0.02},
			{TargetPUnits: 160, LoadFraction: 0.02},
		},
		BackgroundLoad: 0.87,
		Seed:           5,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, u := range rep.Users {
		fmt.Printf("  user %d: settled in class %d, satisfaction %.0f%%, mean delay %.1f p-units\n",
			i+1, u.FinalClass+1, u.Satisfaction*100, u.MeanDelayPUnits)
	}
	fmt.Printf("  class occupancy %v, mean cost %.2f\n", rep.ClassOccupancy, rep.MeanCost)
}

func fmtSlice(v []float64) string {
	out := "["
	for i, x := range v {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.1f", x)
	}
	return out + "]"
}
