package main

import (
	"strings"
	"testing"

	"pdds/internal/testutil"
)

func TestMainRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second provisioning sweep")
	}
	out := testutil.CaptureStdout(t, main)
	for _, want := range []string{"provisioning question", "feasible", "satisfaction"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
