package main

import (
	"strings"
	"testing"

	"pdds/internal/testutil"
)

// TestMainRuns exercises the live UDP forwarder example on loopback.
func TestMainRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("live UDP example")
	}
	out := testutil.CaptureStdout(t, main)
	for _, want := range []string{"WTP forwarder on", "measured ratio d1/d2", "forwarder stats"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
