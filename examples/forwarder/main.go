// Forwarder: the per-hop behaviour on real UDP sockets. A class-based WTP
// forwarder is started on loopback with a deliberately slow egress; two
// traffic classes flood it; the receiver measures per-class one-way delay
// from the timestamps embedded in each datagram. The higher class comes
// out ~4x faster, matching its SDP ratio — live, not simulated.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"pdds"
)

func main() {
	// Receiver socket (the "next hop").
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	defer recv.Close()

	// WTP forwarder with two classes, SDP ratio 4, 512 kb/s egress.
	fwd, err := pdds.StartForwarder("127.0.0.1:0", recv.LocalAddr().String(),
		pdds.WTP, []float64{1, 4}, 512_000)
	if err != nil {
		log.Fatal(err)
	}
	defer fwd.Close()
	fmt.Printf("WTP forwarder on %s -> %s at 512 kb/s (SDP 1,4)\n",
		fwd.Addr(), recv.LocalAddr())

	send, err := net.Dial("udp", fwd.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer send.Close()

	// Flood: 80 datagrams per class, interleaved, far faster than the
	// egress can drain — queueing (and differentiation) must happen.
	const perClass = 80
	payload := make([]byte, 110)
	for i := 0; i < perClass; i++ {
		for class := uint8(0); class < 2; class++ {
			if _, err := send.Write(pdds.EncodeDatagram(class, uint64(i), payload)); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Measure one-way delays at the receiver.
	var sum [2]time.Duration
	var count [2]int
	buf := make([]byte, 2048)
	recv.SetReadDeadline(time.Now().Add(15 * time.Second))
	for count[0]+count[1] < 2*perClass {
		n, _, err := recv.ReadFromUDP(buf)
		if err != nil {
			log.Fatalf("receive: %v (got %d so far)", err, count[0]+count[1])
		}
		class, _, sentAt, _, err := pdds.DecodeDatagram(buf[:n])
		if err != nil {
			log.Fatal(err)
		}
		sum[class] += time.Since(sentAt)
		count[class]++
	}

	mean0 := sum[0] / time.Duration(count[0])
	mean1 := sum[1] / time.Duration(count[1])
	fmt.Printf("class 1 (low,  SDP 1): %3d datagrams, mean one-way delay %v\n", count[0], mean0.Round(time.Millisecond))
	fmt.Printf("class 2 (high, SDP 4): %3d datagrams, mean one-way delay %v\n", count[1], mean1.Round(time.Millisecond))
	fmt.Printf("measured ratio d1/d2 = %.2f (WTP target under saturation: 4.0)\n",
		float64(mean0)/float64(mean1))
	st := fwd.Stats()
	fmt.Printf("forwarder stats: received=%d forwarded=%d dropped=%d\n",
		st.Received, st.Forwarded, st.Dropped)
}
