// VoIP class selection: the end-system-adaptation scenario of the paper's
// introduction. A delay-sensitive application (IP telephony) cannot get an
// absolute guarantee from a relative-differentiation network — instead it
// *chooses its class*: it observes the per-class delay distribution the
// network currently delivers and picks the cheapest class whose
// 95th-percentile per-hop queueing delay fits its end-to-end budget.
//
// The network side is a 95%-utilized T1-speed hop running WTP; the paper's
// p-unit (mean packet transmission time) is 2.29 ms on a T1.
package main

import (
	"fmt"
	"log"

	"pdds"
)

func main() {
	const (
		msPerPUnit  = 2.29  // 441 bytes at T1 speed (1.544 Mb/s)
		hops        = 4     // congested hops on the path
		budgetMs    = 120.0 // end-to-end queueing budget for interactive voice
		perHopMs    = budgetMs / hops
		costPerStep = 1.75 // relative tariff multiplier per class step
	)

	rep, err := pdds.SimulateLink(pdds.LinkConfig{
		Scheduler:   pdds.WTP,
		Utilization: 0.95,
		Horizon:     500_000,
		Warmup:      50_000,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("per-hop delay profile at %.0f%% load (WTP, SDP 1/2/4/8):\n", rep.Utilization*100)
	cost := 1.0
	chosen := -1
	for i, cs := range rep.Classes {
		p95ms := cs.P95Delay / pdds.PUnit * msPerPUnit
		p50ms := cs.P50Delay / pdds.PUnit * msPerPUnit
		fits := p95ms <= perHopMs
		mark := " "
		if fits && chosen == -1 {
			chosen = i
			mark = "*"
		}
		fmt.Printf("%s class %d: p50 %6.2f ms  p95 %6.2f ms  relative cost %.2fx\n",
			mark, i+1, p50ms, p95ms, cost)
		cost *= costPerStep
	}
	if chosen == -1 {
		fmt.Printf("\nno class meets %.1f ms per hop — the application must adapt (codec, buffering) or defer\n", perHopMs)
		return
	}
	fmt.Printf("\nVoIP budget: %.0f ms end-to-end over %d hops -> %.1f ms per hop\n",
		budgetMs, hops, perHopMs)
	fmt.Printf("cheapest class meeting the budget at p95: class %d\n", chosen+1)
	fmt.Println("\nif load shifts, the *ratios* between classes persist (proportional")
	fmt.Println("differentiation), so the app re-measures and re-selects — no")
	fmt.Println("admission control or reservation needed.")
}
