package main

import (
	"strings"
	"testing"

	"pdds/internal/testutil"
)

func TestMainRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed example")
	}
	out := testutil.CaptureStdout(t, main)
	for _, want := range []string{"50 experiments", "R_D", "class 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
