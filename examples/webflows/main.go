// Web flows: the user's-perspective question of §6 — "since class i is
// higher (and probably more expensive) than class j, will my short flow
// actually see lower delays in this path?". Short flows are the hard case:
// long-term averages say little about a 10-packet web session that may
// land inside a burst.
//
// This example runs Study B end to end: identical short flows, one per
// class, repeatedly injected across a 4-hop 95%-loaded WTP path, then
// compares the flows' delay percentiles per experiment.
package main

import (
	"fmt"
	"log"

	"pdds"
)

func main() {
	rep, err := pdds.SimulatePath(pdds.PathConfig{
		Hops:        4,
		Utilization: 0.95,
		FlowPackets: 10, // a short web session
		FlowKbps:    50,
		Experiments: 50, // 50 user experiments, one per second
		WarmupSec:   20,
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("50 experiments: four identical 10-packet flows, one per class,")
	fmt.Println("across a 4-hop path at 95% utilization (WTP, SDP 1/2/4/8)")
	fmt.Println()
	for c, d := range rep.MeanE2E {
		fmt.Printf("  class %d: mean end-to-end queueing delay %6.2f ms\n", c+1, d*1000)
	}
	fmt.Printf("\nend-to-end delay ratio between successive classes R_D = %.2f (ideal 2.00)\n", rep.RD)
	if rep.Inconsistent == 0 {
		fmt.Println("inconsistent comparisons: 0 — in every experiment, at every")
		fmt.Println("percentile, the higher class was at least as fast. Paying for a")
		fmt.Println("higher class was never a mistake, even for 10-packet flows.")
	} else {
		fmt.Printf("inconsistent comparisons: %d (in %d experiments)\n",
			rep.Inconsistent, rep.InconsistentExperiments)
	}
}
