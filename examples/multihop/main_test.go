package main

import (
	"strings"
	"testing"

	"pdds/internal/testutil"
)

// TestMainRuns sweeps the K x rho grid; this is the slowest example
// (several seconds), so it is skipped under -short.
func TestMainRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	out := testutil.CaptureStdout(t, main)
	for _, want := range []string{"K    rho    R_D", "longer paths and heavier load"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "0.95") < 3 {
		t.Errorf("expected a grid row per K at rho=0.95:\n%s", out)
	}
}
