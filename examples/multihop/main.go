// Multihop: how path length and load shape end-to-end differentiation.
// §6 observes that per-hop deviations from the proportional model tend to
// cancel out across hops, pulling the end-to-end ratio metric R_D toward
// its ideal value as K grows, and that heavier load tightens convergence.
// This example sweeps K and ρ and prints the resulting grid — a miniature
// of Table 1's row structure.
package main

import (
	"fmt"
	"log"

	"pdds"
)

func main() {
	fmt.Println("end-to-end R_D (ideal 2.00) and inconsistencies by path length and load")
	fmt.Println("K    rho    R_D    inconsistent")
	for _, hops := range []int{2, 4, 8} {
		for _, rho := range []float64{0.85, 0.95} {
			rep, err := pdds.SimulatePath(pdds.PathConfig{
				Hops:        hops,
				Utilization: rho,
				FlowPackets: 10,
				FlowKbps:    50,
				Experiments: 30,
				WarmupSec:   15,
				Seed:        11,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-4d %.2f   %.2f   %d\n", hops, rho, rep.RD, rep.Inconsistent)
		}
	}
	fmt.Println("\nlonger paths and heavier load pull R_D toward 2.00: per-hop")
	fmt.Println("deviations are independent and average out along the path.")
}
